//! Loopback integration tests: the networked runtime against the
//! in-process simulator, on 127.0.0.1.
//!
//! The headline assertion is *bit identity*: a coordinator plus N client
//! node threads, exchanging sealed frames over real TCP, must finish
//! with exactly the global state the simulator produces from the same
//! seeds — for all five algorithms. The fault tests then kill and
//! restart parts of the session and check the ledger and the checkpoint
//! path keep their promises.

use std::net::TcpStream;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use spatl::prelude::*;
use spatl::{load_global, ExperimentBuilder};
use spatl_fl::{ClientState, GlobalState};
use spatl_net::{
    ClientNode, Coordinator, CoordinatorConfig, Hello, Join, NetError, NodeConfig, NodeReport,
    RoundAssign, RoundDone, RoundMode,
};
use spatl_wire::{open, read_frame, seal, write_frame, MsgType, MAX_FRAME_PAYLOAD};

fn builder(algorithm: Algorithm, rounds: usize) -> ExperimentBuilder {
    ExperimentBuilder::new(algorithm)
        .model(ModelKind::Cnn2)
        .clients(3)
        .samples_per_client(18)
        .rounds(rounds)
        .local_epochs(1)
        .batch_size(8)
        .seed(7)
}

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        join_timeout: Duration::from_secs(20),
        round_timeout: Duration::from_secs(120),
        io_timeout: Duration::from_secs(20),
        ..CoordinatorConfig::default()
    }
}

type NodeHandle = JoinHandle<Result<(ClientState, NodeReport), NetError>>;

fn spawn_nodes(cfg: FlConfig, clients: Vec<ClientState>, addr: &str) -> Vec<NodeHandle> {
    clients
        .into_iter()
        .map(|c| {
            let opts = NodeConfig::new(addr);
            thread::spawn(move || ClientNode::new(cfg, c, opts).run())
        })
        .collect()
}

fn join_nodes(handles: Vec<NodeHandle>) -> Vec<(ClientState, NodeReport)> {
    handles
        .into_iter()
        .map(|h| h.join().expect("node thread").expect("node exits cleanly"))
        .collect()
}

#[track_caller]
fn assert_bits_equal(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}[{i}]: {x} != {y} (bitwise)"
        );
    }
}

#[track_caller]
fn assert_global_bit_identical(a: &GlobalState, b: &GlobalState) {
    assert_bits_equal("shared", &a.shared, &b.shared);
    assert_bits_equal("control", &a.control, &b.control);
    assert_bits_equal("momentum", &a.momentum, &b.momentum);
    assert_bits_equal("buffers", &a.buffers, &b.buffers);
}

/// Run the same session twice — in-process and over loopback TCP — and
/// assert the resulting global models (and per-round records) are bit
/// identical.
fn assert_networked_matches_simulator(algorithm: Algorithm) {
    let rounds = 2;

    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    let session = builder(algorithm, rounds).build();
    let cfg = session.driver.cfg;
    let mut coordinator =
        Coordinator::bind(session.driver, coordinator_config()).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, session.clients, &addr);
    let completed = coordinator.run().expect("networked run");
    assert!(completed, "no shutdown was requested");
    let reports = join_nodes(handles);

    assert_global_bit_identical(&sim.driver.global, &coordinator.driver.global);
    assert_eq!(sim.driver.history.len(), coordinator.driver.history.len());
    for (s, n) in sim.driver.history.iter().zip(&coordinator.driver.history) {
        assert_eq!(s.round, n.round);
        assert_eq!(
            s.mean_acc.to_bits(),
            n.mean_acc.to_bits(),
            "round {}",
            s.round
        );
        assert_bits_equal("per_client_acc", &s.per_client_acc, &n.per_client_acc);
        assert_eq!(s.bytes, n.bytes, "Eq. 13 accounting, round {}", s.round);
        assert_eq!(s.wire, n.wire, "measured wire bytes, round {}", s.round);
        assert_eq!(s.faults.survivors, n.faults.survivors);
        assert_eq!(n.faults.total(), 0, "clean run must ledger nothing");
        // The networked round really was timed; the simulator's never is.
        assert!(n.measured_wall_s > 0.0);
        assert_eq!(s.measured_wall_s, 0.0);
    }
    for (_, report) in &reports {
        assert_eq!(report.rounds_trained, rounds);
        assert_eq!(report.rounds_evaluated, rounds);
        assert_eq!(report.reconnects, 0);
    }
}

#[test]
fn networked_matches_simulator_fedavg() {
    assert_networked_matches_simulator(Algorithm::FedAvg);
}

#[test]
fn networked_matches_simulator_fedprox() {
    assert_networked_matches_simulator(Algorithm::FedProx { mu: 0.01 });
}

#[test]
fn networked_matches_simulator_scaffold() {
    assert_networked_matches_simulator(Algorithm::Scaffold);
}

#[test]
fn networked_matches_simulator_fednova() {
    assert_networked_matches_simulator(Algorithm::FedNova);
}

#[test]
fn networked_matches_simulator_spatl() {
    assert_networked_matches_simulator(Algorithm::Spatl(SpatlOptions::default()));
}

/// Raw control-plane handshake for the hand-rolled misbehaving clients.
fn raw_handshake(addr: &str, cfg: &FlConfig, client_id: u32) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let hello = Hello {
        client_id,
        fingerprint: spatl_net::session_fingerprint(cfg),
        role: spatl_net::HelloRole::Client,
    };
    write_frame(&mut stream, &seal(MsgType::Hello, &hello.encode())).expect("send hello");
    let frame = read_frame(&mut stream, MAX_FRAME_PAYLOAD)
        .expect("read join")
        .expect("join frame");
    let (msg, payload) = open(&frame).expect("open join");
    assert_eq!(msg, MsgType::Join);
    assert!(Join::decode(payload).expect("decode join").accepted);
    stream
}

/// Read one round assignment (and its broadcast frames) off a raw stream.
fn raw_read_assignment(stream: &mut TcpStream) -> RoundAssign {
    let frame = read_frame(stream, MAX_FRAME_PAYLOAD)
        .expect("read assign")
        .expect("assign frame");
    let (msg, payload) = open(&frame).expect("open assign");
    assert_eq!(msg, MsgType::RoundAssign);
    let assign = RoundAssign::decode(payload).expect("decode assign");
    for _ in 0..assign.n_frames {
        read_frame(stream, MAX_FRAME_PAYLOAD)
            .expect("read broadcast frame")
            .expect("broadcast frame");
    }
    assign
}

/// A client that dies in the middle of its upload must surface as a
/// ledgered dropout while the round still completes over the survivors.
#[test]
fn client_killed_mid_upload_is_a_ledgered_dropout() {
    let algorithm = Algorithm::FedAvg;
    let session = builder(algorithm, 1).build();
    let cfg = session.driver.cfg;
    let mut clients = session.clients;
    // Honest nodes for clients 1 and 2; client 0 is the victim, collected
    // first so the failure is observed before the survivors.
    let victim = clients.remove(0);
    assert_eq!(victim.id, 0);

    let before = session.driver.global.shared.clone();
    let mut coordinator =
        Coordinator::bind(session.driver, coordinator_config()).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, clients, &addr);

    let killer_addr = addr.clone();
    let killer = thread::spawn(move || {
        let mut stream = raw_handshake(&killer_addr, &cfg, 0);
        let assign = raw_read_assignment(&mut stream);
        assert_eq!(assign.mode, RoundMode::Train);
        // Claim a two-frame upload, deliver one frame, die.
        let done = RoundDone {
            round: assign.round,
            mode: RoundMode::Train,
            client_id: 0,
            n_samples: 12,
            tau: 2,
            diverged: false,
            keep_ratio: 1.0,
            flops_ratio: 1.0,
            accuracy: 0.0,
            bytes_download: 0,
            bytes_upload: 0,
            upload_payload: 0,
            upload_framed: 0,
            n_frames: 2,
        };
        write_frame(&mut stream, &seal(MsgType::RoundDone, &done.encode())).expect("send done");
        write_frame(&mut stream, &seal(MsgType::BnStats, &[])).expect("send partial upload");
        drop(stream); // killed mid-upload
    });

    coordinator.wait_for_clients();
    let record = coordinator.run_round();
    coordinator.finish().expect("finish");
    killer.join().expect("killer thread");
    join_nodes(handles);

    assert_eq!(record.faults.sampled, 3);
    assert_eq!(record.faults.dropouts, 1, "the kill is a ledgered dropout");
    assert!(record
        .faults
        .events
        .iter()
        .any(|e| e.client_id == 0 && matches!(e.kind, FaultKind::Dropout)));
    assert_eq!(record.faults.survivors, 2, "the round completes without it");
    assert!(!record.faults.no_op, "the survivors' updates were applied");
    assert!(
        coordinator
            .driver
            .global
            .shared
            .iter()
            .zip(&before)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "aggregation over the survivors moved the global model"
    );
}

/// A `Shutdown` frame from a client ends the session early: the round it
/// interrupted still completes, the global state is checkpointed via the
/// existing save/load path, and the saved state round-trips bit
/// identically.
#[test]
fn shutdown_frame_checkpoints_global_state() {
    let algorithm = Algorithm::FedAvg;
    let checkpoint = std::env::temp_dir().join(format!(
        "spatl_net_shutdown_ckpt_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&checkpoint);

    let session = builder(algorithm, 4).build();
    let cfg = session.driver.cfg;
    let mut clients = session.clients;
    let controller = clients.remove(2);
    assert_eq!(controller.id, 2);

    let mut opts = coordinator_config();
    opts.checkpoint = Some(checkpoint.clone());
    let mut coordinator = Coordinator::bind(session.driver, opts).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, clients, &addr);

    let controller_addr = addr.clone();
    let controller = thread::spawn(move || {
        let mut stream = raw_handshake(&controller_addr, &cfg, 2);
        let assign = raw_read_assignment(&mut stream);
        assert_eq!(assign.round, 0);
        // Ask the session to stop instead of uploading.
        write_frame(&mut stream, &seal(MsgType::Shutdown, &[])).expect("send shutdown");
        stream
    });

    let completed = coordinator.run().expect("networked run");
    assert!(!completed, "the session was shut down early");
    drop(controller.join().expect("controller thread"));
    join_nodes(handles);

    assert_eq!(
        coordinator.driver.history.len(),
        1,
        "the interrupted round still completed"
    );
    let record = &coordinator.driver.history[0];
    assert!(record.faults.dropouts >= 1, "the requester left the round");
    assert_eq!(record.faults.survivors, 2);

    let restored = load_global(&checkpoint).expect("checkpoint loads");
    assert_global_bit_identical(&coordinator.driver.global, &restored);
    let _ = std::fs::remove_file(&checkpoint);
}

/// Kill the coordinator after two rounds, checkpoint, bring up a new one
/// and let the *same* client nodes reconnect: the resumed session must
/// finish bit-identical to an uninterrupted simulator run. SCAFFOLD makes
/// this the strictest variant — client-side control variates survive only
/// because the nodes outlive the coordinator.
#[test]
fn coordinator_restart_resumes_bit_identically() {
    let algorithm = Algorithm::Scaffold;
    let rounds = 4;
    let checkpoint =
        std::env::temp_dir().join(format!("spatl_net_resume_ckpt_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);

    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    // Phase A: run the first two rounds, then shut down (checkpointing).
    let session = builder(algorithm, rounds).build();
    let cfg = session.driver.cfg;
    let mut opts = coordinator_config();
    opts.checkpoint = Some(checkpoint.clone());
    let mut coordinator = Coordinator::bind(session.driver, opts).expect("bind A");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, session.clients, &addr);
    coordinator.wait_for_clients();
    coordinator.run_round();
    coordinator.run_round();
    coordinator.finish().expect("finish A");
    let survivors: Vec<ClientState> = join_nodes(handles).into_iter().map(|(c, _)| c).collect();
    drop(coordinator);

    // Phase B: a fresh coordinator restores the checkpoint, fast-forwards
    // the sampling stream past the completed rounds, and the surviving
    // nodes reconnect with their state intact.
    let session_b = builder(algorithm, rounds).build();
    let mut driver = session_b.driver;
    driver.global = load_global(&checkpoint).expect("checkpoint loads");
    driver.advance_sampling(2);
    assert_eq!(driver.round_index(), 2);
    let mut coordinator = Coordinator::bind(driver, coordinator_config()).expect("bind B");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, survivors, &addr);
    let completed = coordinator.run().expect("networked resume");
    assert!(completed);
    let reports = join_nodes(handles);

    assert_global_bit_identical(&sim.driver.global, &coordinator.driver.global);
    assert_eq!(
        coordinator.driver.history.len(),
        2,
        "rounds 2 and 3 ran here"
    );
    for ((s, n), round) in sim.driver.history[2..]
        .iter()
        .zip(&coordinator.driver.history)
        .zip(2..)
    {
        assert_eq!(n.round, round);
        assert_eq!(s.mean_acc.to_bits(), n.mean_acc.to_bits(), "round {round}");
    }
    for (_, report) in &reports {
        assert_eq!(report.rounds_trained, 2);
    }
    let _ = std::fs::remove_file(&checkpoint);
}

/// Two processes started with different configurations must fail fast at
/// the handshake, not silently diverge.
#[test]
fn mismatched_configuration_is_rejected() {
    let session = builder(Algorithm::FedAvg, 1).build();
    let mut coordinator =
        Coordinator::bind(session.driver, coordinator_config()).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();

    // Same shard, different seed: the fingerprints differ.
    let foreign = builder(Algorithm::FedAvg, 1).seed(8).build();
    let foreign_cfg = foreign.driver.cfg;
    let state = foreign.clients.into_iter().next().expect("shard");
    let handle =
        thread::spawn(move || ClientNode::new(foreign_cfg, state, NodeConfig::new(addr)).run());
    // Accept (and reject) the hello while the node waits for its verdict.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !handle.is_finished() && std::time::Instant::now() < deadline {
        coordinator.accept_pending();
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(coordinator.connected(), 0, "the registration was rejected");
    match handle.join().expect("node thread") {
        Err(NetError::Rejected) => {}
        other => panic!("expected a rejection, got {other:?}"),
    }
}
