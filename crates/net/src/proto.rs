//! Control-plane payload codecs: the session-management messages that
//! surround the data-plane model/update frames.
//!
//! Layouts follow the `spatl-wire` house style — explicit little-endian
//! fields, no self-describing serialisation, decoders that return
//! [`WireError`] instead of panicking. Each payload rides inside a sealed
//! envelope with the matching control-plane [`spatl_wire::MsgType`]
//! (`Hello`/`Join`/`RoundAssign`/`RoundDone`/`Shutdown`); `Shutdown`
//! carries an empty payload and has no codec here.

use spatl_fl::FlConfig;
use spatl_wire::WireError;

/// What kind of endpoint a [`Hello`] registers. The tiered root
/// terminates both edge aggregators and — after an edge dies — that
/// edge's surviving clients re-registering directly (DESIGN.md §14
/// failover), and must tell the two apart because their wire client ids
/// index different tables (edge slot vs global client id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloRole {
    /// A client node: `client_id` is a global client id.
    Client,
    /// An edge aggregator: `client_id` is its edge id.
    Edge,
}

impl HelloRole {
    fn tag(self) -> u8 {
        match self {
            HelloRole::Client => 0,
            HelloRole::Edge => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(HelloRole::Client),
            1 => Ok(HelloRole::Edge),
            other => Err(WireError::Malformed(format!("unknown hello role {other}"))),
        }
    }
}

/// Client→server: a node introduces itself when (re)connecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The node's stable client id (shard index), or its edge id when
    /// `role` is [`HelloRole::Edge`].
    pub client_id: u32,
    /// Fingerprint of the node's run configuration; the coordinator
    /// rejects a `Hello` whose fingerprint differs from its own, so two
    /// processes started with different seeds or algorithms fail fast
    /// instead of silently diverging.
    pub fingerprint: u64,
    /// What this endpoint is (client node or edge aggregator).
    pub role: HelloRole,
}

/// Server→client: verdict on a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Join {
    /// Whether the coordinator accepted the registration.
    pub accepted: bool,
    /// The next round index the coordinator will run — after a
    /// mid-session reconnect this tells the node where the run stands.
    pub round: u32,
}

/// What a [`RoundAssign`] asks the client to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundMode {
    /// Train locally and upload the update.
    Train,
    /// Sync the broadcast weights and report validation accuracy only
    /// (no upload frames; excluded from wire accounting like the
    /// simulator's in-process evaluation pass).
    Eval,
}

impl RoundMode {
    fn tag(self) -> u8 {
        match self {
            RoundMode::Train => 0,
            RoundMode::Eval => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(RoundMode::Train),
            1 => Ok(RoundMode::Eval),
            other => Err(WireError::Malformed(format!("unknown round mode {other}"))),
        }
    }
}

/// Server→client: round kickoff. `n_frames` model frames follow
/// back-to-back on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundAssign {
    /// Round index.
    pub round: u32,
    /// Train or evaluate.
    pub mode: RoundMode,
    /// Number of broadcast frames that follow.
    pub n_frames: u32,
}

/// Client→server: round completion — the upload's bookkeeping metadata.
/// In [`RoundMode::Train`], `n_frames` upload frames follow on the
/// stream; in [`RoundMode::Eval`] only `accuracy` is meaningful and
/// `n_frames` is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundDone {
    /// Round index being answered.
    pub round: u32,
    /// Mode being answered.
    pub mode: RoundMode,
    /// The node's client id.
    pub client_id: u32,
    /// Local training-set size (aggregation weight).
    pub n_samples: u64,
    /// Local optimisation steps taken.
    pub tau: u64,
    /// Whether local training produced a non-finite delta.
    pub diverged: bool,
    /// Fraction of shared parameters uploaded.
    pub keep_ratio: f32,
    /// FLOPs ratio of the (masked) local model.
    pub flops_ratio: f32,
    /// Validation accuracy (eval mode; zero in train mode).
    pub accuracy: f32,
    /// Analytic Eq. 13 download bytes this round cost the client.
    pub bytes_download: u64,
    /// Analytic Eq. 13 upload bytes.
    pub bytes_upload: u64,
    /// Measured upload tensor-payload bytes.
    pub upload_payload: u64,
    /// Measured upload bytes on the wire, framing included.
    pub upload_framed: u64,
    /// Number of upload frames that follow.
    pub n_frames: u32,
}

/// Little-endian field reader shared by the decoders.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::LengthMismatch {
                advertised: self.pos,
                actual: self.buf.len(),
            });
        }
        Ok(())
    }
}

impl Hello {
    /// Serialize into a payload body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(13);
        b.extend_from_slice(&self.client_id.to_le_bytes());
        b.extend_from_slice(&self.fingerprint.to_le_bytes());
        b.push(self.role.tag());
        b
    }

    /// Parse a payload body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let out = Hello {
            client_id: r.u32()?,
            fingerprint: r.u64()?,
            role: HelloRole::from_tag(r.u8()?)?,
        };
        r.done()?;
        Ok(out)
    }
}

impl Join {
    /// Serialize into a payload body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(5);
        b.push(u8::from(self.accepted));
        b.extend_from_slice(&self.round.to_le_bytes());
        b
    }

    /// Parse a payload body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let accepted = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(WireError::Malformed(format!(
                    "join verdict must be 0 or 1, got {other}"
                )))
            }
        };
        let out = Join {
            accepted,
            round: r.u32()?,
        };
        r.done()?;
        Ok(out)
    }
}

impl RoundAssign {
    /// Serialize into a payload body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(9);
        b.extend_from_slice(&self.round.to_le_bytes());
        b.push(self.mode.tag());
        b.extend_from_slice(&self.n_frames.to_le_bytes());
        b
    }

    /// Parse a payload body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let out = RoundAssign {
            round: r.u32()?,
            mode: RoundMode::from_tag(r.u8()?)?,
            n_frames: r.u32()?,
        };
        r.done()?;
        Ok(out)
    }
}

impl RoundDone {
    /// Serialize into a payload body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(66);
        b.extend_from_slice(&self.round.to_le_bytes());
        b.push(self.mode.tag());
        b.extend_from_slice(&self.client_id.to_le_bytes());
        b.extend_from_slice(&self.n_samples.to_le_bytes());
        b.extend_from_slice(&self.tau.to_le_bytes());
        b.push(u8::from(self.diverged));
        b.extend_from_slice(&self.keep_ratio.to_le_bytes());
        b.extend_from_slice(&self.flops_ratio.to_le_bytes());
        b.extend_from_slice(&self.accuracy.to_le_bytes());
        b.extend_from_slice(&self.bytes_download.to_le_bytes());
        b.extend_from_slice(&self.bytes_upload.to_le_bytes());
        b.extend_from_slice(&self.upload_payload.to_le_bytes());
        b.extend_from_slice(&self.upload_framed.to_le_bytes());
        b.extend_from_slice(&self.n_frames.to_le_bytes());
        b
    }

    /// Parse a payload body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let out = RoundDone {
            round: r.u32()?,
            mode: RoundMode::from_tag(r.u8()?)?,
            client_id: r.u32()?,
            n_samples: r.u64()?,
            tau: r.u64()?,
            diverged: r.u8()? != 0,
            keep_ratio: r.f32()?,
            flops_ratio: r.f32()?,
            accuracy: r.f32()?,
            bytes_download: r.u64()?,
            bytes_upload: r.u64()?,
            upload_payload: r.u64()?,
            upload_framed: r.u64()?,
            n_frames: r.u32()?,
        };
        r.done()?;
        Ok(out)
    }
}

/// Fingerprint of the run configuration both ends must share: seed,
/// cohort geometry, training hyper-parameters and the algorithm (with its
/// parameters). Two processes with the same fingerprint build identical
/// sessions from [`spatl::ExperimentBuilder`]-style factories; differing
/// fingerprints mean the runs would silently diverge, so the coordinator
/// rejects the `Hello`.
pub fn session_fingerprint(cfg: &FlConfig) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        // SplitMix64 finalizer over a running combination.
        let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = 0x5350_4154_4C4E_4554u64; // "SPATLNET"
    h = mix(h, cfg.seed);
    h = mix(h, cfg.n_clients as u64);
    h = mix(h, cfg.rounds as u64);
    h = mix(h, cfg.local_epochs as u64);
    h = mix(h, cfg.batch_size as u64);
    h = mix(h, u64::from(cfg.sample_ratio.to_bits()));
    h = mix(h, u64::from(cfg.lr.to_bits()));
    h = mix(h, u64::from(cfg.momentum.to_bits()));
    h = mix(h, u64::from(cfg.server_lr.to_bits()));
    use spatl_fl::Algorithm;
    h = match cfg.algorithm {
        Algorithm::FedAvg => mix(h, 1),
        Algorithm::FedProx { mu } => mix(mix(h, 2), u64::from(mu.to_bits())),
        Algorithm::Scaffold => mix(h, 3),
        Algorithm::FedNova => mix(h, 4),
        Algorithm::Spatl(o) => {
            let mut v = mix(h, 5);
            v = mix(v, u64::from(o.selection) | u64::from(o.transfer) << 1);
            v = mix(v, u64::from(o.gradient_control));
            v = mix(v, u64::from(o.target_flops_ratio.to_bits()));
            mix(v, o.finetune_rounds as u64)
        }
    };
    // Chaos and churn plans are mixed in only when present, so sessions
    // without them keep their historical fingerprints. Every endpoint
    // must share the schedule: the coordinator's dedup expectations and
    // the nodes' injected faults are two halves of one seeded plan.
    if let Some(c) = &cfg.chaos {
        let mut v = mix(h, 6);
        v = mix(v, c.reset.to_bits());
        v = mix(v, c.stall.to_bits());
        v = mix(v, c.stall_ms);
        v = mix(v, c.duplicate.to_bits());
        v = mix(
            v,
            match c.kill_edge {
                Some((r, e)) => 1 | u64::from(r) << 1 | u64::from(e) << 33,
                None => 0,
            },
        );
        h = mix(v, c.seed);
    }
    if let Some(c) = &cfg.churn {
        let mut v = mix(h, 7);
        v = mix(v, u64::from(c.period));
        v = mix(v, c.duty.to_bits());
        v = mix(v, u64::from(c.arrival_span));
        v = mix(v, c.flake.to_bits());
        v = mix(v, c.abrupt.to_bits());
        h = mix(v, c.seed);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_fl::{Algorithm, SpatlOptions};

    #[test]
    fn hello_round_trips() {
        for role in [HelloRole::Client, HelloRole::Edge] {
            let msg = Hello {
                client_id: 7,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                role,
            };
            assert_eq!(Hello::decode(&msg.encode()).unwrap(), msg);
        }
        let mut bad = Hello {
            client_id: 0,
            fingerprint: 0,
            role: HelloRole::Client,
        }
        .encode();
        *bad.last_mut().unwrap() = 9;
        assert!(matches!(Hello::decode(&bad), Err(WireError::Malformed(_))));
    }

    #[test]
    fn join_round_trips_and_rejects_bad_verdict() {
        for accepted in [false, true] {
            let msg = Join { accepted, round: 3 };
            assert_eq!(Join::decode(&msg.encode()).unwrap(), msg);
        }
        let mut bad = Join {
            accepted: true,
            round: 0,
        }
        .encode();
        bad[0] = 2;
        assert!(matches!(Join::decode(&bad), Err(WireError::Malformed(_))));
    }

    #[test]
    fn round_assign_round_trips() {
        for mode in [RoundMode::Train, RoundMode::Eval] {
            let msg = RoundAssign {
                round: 12,
                mode,
                n_frames: 2,
            };
            assert_eq!(RoundAssign::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn round_done_round_trips() {
        let msg = RoundDone {
            round: 4,
            mode: RoundMode::Train,
            client_id: 3,
            n_samples: 60,
            tau: 8,
            diverged: false,
            keep_ratio: 0.42,
            flops_ratio: 0.7,
            accuracy: 0.31,
            bytes_download: 123_456,
            bytes_upload: 65_432,
            upload_payload: 65_432,
            upload_framed: 65_480,
            n_frames: 2,
        };
        assert_eq!(RoundDone::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn truncated_and_oversized_bodies_rejected() {
        let body = RoundDone {
            round: 0,
            mode: RoundMode::Eval,
            client_id: 0,
            n_samples: 0,
            tau: 0,
            diverged: false,
            keep_ratio: 0.0,
            flops_ratio: 0.0,
            accuracy: 0.0,
            bytes_download: 0,
            bytes_upload: 0,
            upload_payload: 0,
            upload_framed: 0,
            n_frames: 0,
        }
        .encode();
        assert!(matches!(
            RoundDone::decode(&body[..body.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut long = body.clone();
        long.push(0);
        assert!(matches!(
            RoundDone::decode(&long),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = FlConfig::new(Algorithm::FedAvg);
        let mut b = a;
        b.seed = 1;
        let mut c = a;
        c.algorithm = Algorithm::FedProx { mu: 0.1 };
        let d = FlConfig::new(Algorithm::Spatl(SpatlOptions::default()));
        let fps = [
            session_fingerprint(&a),
            session_fingerprint(&b),
            session_fingerprint(&c),
            session_fingerprint(&d),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{i} vs {j}");
            }
        }
        assert_eq!(session_fingerprint(&a), session_fingerprint(&a));
    }

    #[test]
    fn fingerprint_covers_chaos_and_churn_plans() {
        use spatl_fl::{ChaosPlan, ChurnPlan};
        let base = FlConfig::new(Algorithm::FedAvg);
        let mut chaotic = base;
        chaotic.chaos = Some(ChaosPlan {
            reset: 0.2,
            ..ChaosPlan::default()
        });
        let mut chaotic_other_seed = chaotic;
        chaotic_other_seed.chaos.as_mut().unwrap().seed ^= 1;
        let mut churning = base;
        churning.churn = Some(ChurnPlan::cross_device());
        let fps = [
            session_fingerprint(&base),
            session_fingerprint(&chaotic),
            session_fingerprint(&chaotic_other_seed),
            session_fingerprint(&churning),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{i} vs {j}");
            }
        }
    }
}
