//! Networked federated runtime: a TCP coordinator and client nodes that
//! speak the `spatl-wire` protocol over real sockets.
//!
//! The in-process simulator (`spatl-fl`) and this crate share one round
//! engine — [`RoundDriver`](spatl_fl::RoundDriver) — so the *only* thing
//! that differs between a simulated round and a networked round is how
//! the sealed frames travel. A loopback run with the same seeds produces
//! a global model bit-identical to the simulator's (integration-tested
//! for all five algorithms).
//!
//! Architecture (DESIGN.md §10 is the narrative version):
//!
//! * [`Coordinator`] — binds a listener, registers client nodes via the
//!   control-plane handshake ([`proto::Hello`]/[`proto::Join`]), then
//!   drives rounds: broadcast the sealed global state, collect uploads
//!   behind a round barrier with per-connection deadlines, screen and
//!   aggregate through the shared driver. A client that disconnects or
//!   misses its deadline becomes a ledgered
//!   [`FaultRecord`](spatl_fl::FaultRecord) entry, never a hang.
//! * [`ClientNode`] — owns one [`ClientState`](spatl_fl::ClientState),
//!   connects with capped exponential backoff (and reconnects after a
//!   coordinator restart, preserving client-side state), trains on
//!   assignment and streams its upload frames back.
//! * [`proto`] — the control-plane payload codecs
//!   (`Hello`/`Join`/`RoundAssign`/`RoundDone`; `Shutdown` is an empty
//!   payload).
//!
//! * [`EdgeAggregator`] — the middle tier of a 2-level tree (DESIGN.md
//!   §11): terminates one [`edge_partition`](spatl_fl::edge_partition)
//!   slice of the clients, screens and combines their uploads locally,
//!   and forwards one weight-carrying
//!   [`EdgeCombined`](spatl_wire::EdgeCombined) frame to the root per
//!   round.
//!
//! The binaries `spatl-server`, `spatl-client` and `spatl-edge` wrap the
//! endpoints for multi-process runs; see the README quickstart.

#![deny(missing_docs)]

use std::fmt;
use std::io;

use spatl::CheckpointError;
use spatl_wire::{StreamError, WireError};

pub mod coordinator;
pub mod edge;
mod gather;
pub mod node;
pub mod proto;

pub use coordinator::{Coordinator, CoordinatorConfig, Topology};
pub use edge::{EdgeAggregator, EdgeConfig, EdgeReport};
pub use node::{ClientNode, NodeConfig, NodeReport};
pub use proto::{session_fingerprint, Hello, HelloRole, Join, RoundAssign, RoundDone, RoundMode};

/// Everything that can go wrong at a networked endpoint.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (bind, connect, timeout configuration).
    Io(io::Error),
    /// Frame-transport failure while reading or writing a stream.
    Stream(StreamError),
    /// A frame arrived but its envelope or payload did not decode.
    Wire(WireError),
    /// Checkpoint persistence failed during shutdown or resume.
    Checkpoint(CheckpointError),
    /// The peer violated the control-plane protocol (unexpected message
    /// type, mismatched round or client id).
    Protocol(String),
    /// The coordinator rejected this node's registration — the two
    /// processes were started with different run configurations
    /// (see [`session_fingerprint`]). Not retried: reconnecting with the
    /// same configuration would be rejected again.
    Rejected,
    /// The connection was lost and the reconnect budget is exhausted.
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Stream(e) => write!(f, "frame transport error: {e}"),
            NetError::Wire(e) => write!(f, "wire decode error: {e}"),
            NetError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Rejected => write!(
                f,
                "registration rejected: session fingerprint mismatch \
                 (server and client were started with different configurations)"
            ),
            NetError::Disconnected => write!(f, "connection lost and reconnect budget exhausted"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<StreamError> for NetError {
    fn from(e: StreamError) -> Self {
        NetError::Stream(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<CheckpointError> for NetError {
    fn from(e: CheckpointError) -> Self {
        NetError::Checkpoint(e)
    }
}
