//! Concurrent upload collection for the flat coordinator (DESIGN.md
//! §12): one non-blocking state machine per connection, driven by the
//! coordinator's readiness sweep.
//!
//! Each sampled connection advances `Header → Parked → Frames` as bytes
//! arrive: the [`RoundDone`] header is assembled first (it carries the
//! frame count and the client's bookkeeping), then the upload's data
//! frames. The *admission window* sits between the two: a connection
//! whose header arrived holds its frames in the kernel socket buffer
//! until the sweep grants it a slot, so at most `window` uploads are
//! ever buffered in coordinator memory at once — TCP receive-window
//! backpressure bounds the senders, and the round's memory stays
//! O(window · upload), independent of cohort size.
//!
//! Failure classification mirrors the blocking collector's exactly, so
//! the fault ledger is transport-shape-independent: a vanished or
//! protocol-confused stream is a `Disconnect`, a `Shutdown` frame is a
//! shutdown request, and a header that frames correctly but fails to
//! decode is `Corrupt`.

use std::net::TcpStream;

use spatl_fl::{LocalOutcome, RoundBytes, WireBytes};
use spatl_wire::{open, FramePoll, FrameReader, MsgType};

use crate::proto::{RoundDone, RoundMode};

/// Why collecting one client's upload failed.
pub(crate) enum CollectFailure {
    /// The connection produced no complete reply before the round
    /// deadline; the client may still be training.
    Timeout,
    /// The connection is gone (EOF, reset, write failure, or a stream
    /// that stopped making protocol sense).
    Disconnect,
    /// The client sent a `Shutdown` frame instead of an upload.
    Shutdown,
    /// The reply arrived intact at the framing layer but its payload was
    /// rejected by the decode path (CRC or codec failure).
    Corrupt(String),
}

/// What one readiness-sweep poll of a connection produced.
pub(crate) enum GatherPoll {
    /// The socket would block and nothing new arrived.
    Idle,
    /// Bytes arrived (or the state advanced) but the reply is still
    /// incomplete.
    Progress,
    /// The complete upload arrived: header bookkeeping plus every frame.
    Upload(Box<LocalOutcome>, Vec<Vec<u8>>),
    /// The connection failed; the sweep ledgers it and moves on.
    Failed(CollectFailure),
}

enum GatherState {
    /// Assembling the [`RoundDone`] header frame.
    Header,
    /// Header decoded, admission window full: the upload's frames wait
    /// in the kernel socket buffer until [`ConnGather::admit`].
    Parked {
        meta: LocalOutcome,
        remaining: usize,
    },
    /// Admitted: assembling `remaining` more upload frames.
    Frames {
        meta: LocalOutcome,
        remaining: usize,
        frames: Vec<Vec<u8>>,
    },
}

/// One connection's upload collection state across readiness sweeps.
pub(crate) struct ConnGather {
    reader: FrameReader,
    state: GatherState,
}

impl ConnGather {
    /// A fresh collector enforcing `max_frame` on every assembled frame.
    pub(crate) fn new(max_frame: usize) -> Self {
        ConnGather {
            reader: FrameReader::new(max_frame),
            state: GatherState::Header,
        }
    }

    /// Whether the header arrived and the connection is waiting for an
    /// admission slot.
    pub(crate) fn parked(&self) -> bool {
        matches!(self.state, GatherState::Parked { .. })
    }

    /// Whether this connection holds an admission slot (it is assembling
    /// upload frames in coordinator memory). Used by the sweep to return
    /// the slot if the connection fails mid-assembly.
    pub(crate) fn assembling(&self) -> bool {
        matches!(self.state, GatherState::Frames { .. })
    }

    /// Grant a parked connection its admission slot: its upload frames
    /// may now be read into memory.
    pub(crate) fn admit(&mut self) {
        if let GatherState::Parked { meta, remaining } =
            std::mem::replace(&mut self.state, GatherState::Header)
        {
            self.state = GatherState::Frames {
                meta,
                remaining,
                frames: Vec::with_capacity(remaining),
            };
        }
    }

    /// Advance this connection with whatever `stream` can deliver
    /// without blocking. Returns at the first would-block, completed
    /// upload, or failure; call once per sweep.
    pub(crate) fn poll(&mut self, stream: &mut TcpStream, round: u32, id: usize) -> GatherPoll {
        let mut progressed = false;
        loop {
            match &mut self.state {
                GatherState::Parked { .. } => {
                    return if progressed {
                        GatherPoll::Progress
                    } else {
                        GatherPoll::Idle
                    };
                }
                GatherState::Header => match self.reader.poll(stream) {
                    Ok(FramePoll::Pending) => {
                        return if progressed {
                            GatherPoll::Progress
                        } else {
                            GatherPoll::Idle
                        };
                    }
                    Ok(FramePoll::Eof) | Err(_) => {
                        return GatherPoll::Failed(CollectFailure::Disconnect)
                    }
                    Ok(FramePoll::Frame(frame)) => {
                        progressed = true;
                        let (msg, payload) = match open(&frame) {
                            Ok(x) => x,
                            Err(_) => return GatherPoll::Failed(CollectFailure::Disconnect),
                        };
                        match msg {
                            MsgType::Shutdown => {
                                return GatherPoll::Failed(CollectFailure::Shutdown)
                            }
                            MsgType::RoundDone => {}
                            _ => return GatherPoll::Failed(CollectFailure::Disconnect),
                        }
                        let done = match RoundDone::decode(payload) {
                            Ok(d) => d,
                            Err(e) => {
                                return GatherPoll::Failed(CollectFailure::Corrupt(e.to_string()))
                            }
                        };
                        if done.round != round
                            || done.client_id as usize != id
                            || done.mode != RoundMode::Train
                        {
                            return GatherPoll::Failed(CollectFailure::Disconnect);
                        }
                        self.state = GatherState::Parked {
                            remaining: done.n_frames as usize,
                            meta: meta_outcome(&done),
                        };
                    }
                },
                GatherState::Frames {
                    remaining, frames, ..
                } => {
                    if *remaining == 0 {
                        let state = std::mem::replace(&mut self.state, GatherState::Header);
                        let GatherState::Frames { meta, frames, .. } = state else {
                            unreachable!("state was just matched as Frames");
                        };
                        return GatherPoll::Upload(Box::new(meta), frames);
                    }
                    match self.reader.poll(stream) {
                        Ok(FramePoll::Pending) => {
                            return if progressed {
                                GatherPoll::Progress
                            } else {
                                GatherPoll::Idle
                            };
                        }
                        Ok(FramePoll::Eof) | Err(_) => {
                            return GatherPoll::Failed(CollectFailure::Disconnect)
                        }
                        Ok(FramePoll::Frame(f)) => {
                            progressed = true;
                            frames.push(f);
                            *remaining -= 1;
                        }
                    }
                }
            }
        }
    }
}

/// Rebuild the bookkeeping half of a [`LocalOutcome`] from a client's
/// [`RoundDone`] header; every tensor field stays empty until
/// `RoundDriver::decode_client_upload` fills it from the frames.
pub(crate) fn meta_outcome(done: &RoundDone) -> LocalOutcome {
    LocalOutcome {
        client_id: done.client_id as usize,
        n_samples: done.n_samples as usize,
        tau: done.tau as usize,
        delta: Vec::new(),
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: done.diverged,
        bytes: RoundBytes {
            download: done.bytes_download,
            upload: done.bytes_upload,
        },
        wire: WireBytes {
            download_payload: 0,
            download_framed: 0,
            upload_payload: done.upload_payload,
            upload_framed: done.upload_framed,
        },
        frames: Vec::new(),
        keep_ratio: done.keep_ratio,
        flops_ratio: done.flops_ratio,
    }
}
