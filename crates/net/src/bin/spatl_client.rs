//! `spatl-client` — one networked federated client node.
//!
//! Rebuilds the session deterministically from the same flags the server
//! was started with, takes the shard selected by `--id`, connects to the
//! coordinator (retrying with capped exponential backoff), and serves
//! training/evaluation assignments until the coordinator shuts the
//! session down.
//!
//! ```text
//! spatl-client --addr 127.0.0.1:7878 --id 0 --clients 4 --rounds 3 \
//!              --seed 7 --algorithm spatl
//! ```
//!
//! In a tiered session, `--fallback-addr <root>` names the root
//! coordinator: after `--fallback-after` consecutive failures to reach
//! the home edge at `--addr`, the client re-registers directly at the
//! root (rejected and bounced back while the edge is alive).

use spatl_bench::cli::{Args, NetOpts};
use spatl_net::{ClientNode, NetError, NodeConfig};

fn main() -> Result<(), NetError> {
    let mut flags: Vec<&str> = NetOpts::FLAGS.to_vec();
    flags.extend(["id", "fallback-addr", "fallback-after"]);
    let args = Args::parse(&flags);
    let opts = NetOpts::from_args(&args);
    let id: usize = args.get_or("id", 0);

    let session = opts.build_session();
    assert!(
        id < session.clients.len(),
        "--id {id} out of range for --clients {}",
        session.clients.len()
    );
    let state = session.clients.into_iter().nth(id).expect("shard exists");
    let cfg = session.driver.cfg;

    eprintln!(
        "[client {id}] connecting to {} ({})",
        opts.addr,
        cfg.algorithm.name()
    );
    // In a tiered session `--addr` points at this client's home edge and
    // `--fallback-addr` at the root: when the edge dies the client
    // re-registers directly at the root and trains over the root link.
    let mut node_opts = NodeConfig::new(opts.addr.clone());
    node_opts.fallback_addr = args.get("fallback-addr").map(str::to_string);
    node_opts.fallback_after = args.get_or("fallback-after", node_opts.fallback_after);
    let node = ClientNode::new(cfg, state, node_opts);
    let (_, report) = node.run()?;
    eprintln!(
        "[client {id}] done: trained {} rounds, evaluated {}, reconnected {} times",
        report.rounds_trained, report.rounds_evaluated, report.reconnects
    );
    Ok(())
}
