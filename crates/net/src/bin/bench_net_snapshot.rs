//! Networked-coordinator scaling snapshot: O(model) memory rounds.
//!
//! Drives a real TCP loopback round through the concurrent coordinator
//! at increasing cohort sizes (10 000 clients at full scale) and records
//! what DESIGN.md §12 promises: collection wall-clock, uploads/s, and a
//! coordinator peak RSS that tracks the model size and the admission
//! window — *not* the cohort. The numbers land in `BENCH_net.json` at
//! the repo root so subsequent PRs have a comparable baseline.
//!
//! Three roles, one binary, separate processes:
//!
//! * **orchestrator** (no subcommand) — spawns the other two per cohort
//!   size, collects their reports, writes the snapshot.
//! * **`coordinator`** — binds a [`Coordinator`] on a free port, prints
//!   `ADDR <addr>`, runs the configured rounds, prints `RESULT <json>`.
//!   Runs alone in its process so `VmHWM` in `/proc/self/status` is
//!   *its* peak, not the swarm's.
//! * **`swarm`** — one process holding every client connection. It
//!   speaks the wire protocol directly (Hello/Join, assignment in,
//!   `RoundDone` + upload frames out) instead of running real local
//!   training: every client replies with the same pre-encoded upload,
//!   which is indistinguishable on the coordinator side — data frames
//!   carry no client identity, only the `RoundDone` header does. That
//!   keeps a 10 000-client swarm feasible on one core while the
//!   coordinator does full CRC + decode + fold work per upload.
//!
//! The two children split the ~20 000 file-descriptor budget: each side
//! of a loopback connection costs one fd in its own process.
//!
//! `SPATL_EXP_SCALE=quick` runs small cohorts (CI) and asserts the
//! coordinator's peak RSS stays under a cohort-independent bound;
//! `SPATL_BENCH_OUT` overrides the output path.

use serde_json::json;
use spatl_fl::{
    encode_upload, Algorithm, CommModel, FlConfig, GlobalState, LocalOutcome, RoundDriver,
    WireBytes,
};
use spatl_net::{
    session_fingerprint, Coordinator, CoordinatorConfig, Hello, HelloRole, Join, RoundAssign,
    RoundDone, RoundMode,
};
use spatl_wire::{open, read_frame, seal, write_frame, MsgType, MAX_FRAME_PAYLOAD};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

/// Session geometry shared by every role; the handshake fingerprint
/// guarantees the children agree.
#[derive(Clone, Copy)]
struct Scenario {
    clients: usize,
    params: usize,
    rounds: usize,
}

impl Scenario {
    fn config(&self) -> FlConfig {
        let mut cfg = FlConfig::new(Algorithm::FedAvg);
        cfg.n_clients = self.clients;
        cfg.sample_ratio = 1.0;
        cfg.rounds = self.rounds;
        cfg.seed = 42;
        cfg
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn scenario_from(args: &[String]) -> Scenario {
    let get = |name: &str| {
        arg_value(args, name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("bad {name}"))
    };
    Scenario {
        clients: get("--clients"),
        params: get("--params"),
        rounds: get("--rounds"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("coordinator") => coordinator_role(scenario_from(&args)),
        Some("swarm") => swarm_role(
            scenario_from(&args),
            arg_value(&args, "--addr").expect("missing --addr"),
        ),
        _ => orchestrate(),
    }
}

// ---------------------------------------------------------------------------
// Coordinator child
// ---------------------------------------------------------------------------

/// Peak resident set of this process so far, from `/proc/self/status`
/// (`VmHWM`), in bytes. Zero on platforms without procfs.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn coordinator_role(scn: Scenario) {
    let cfg = scn.config();
    let global = GlobalState {
        shared: vec![0.01f32; scn.params],
        control: Vec::new(),
        momentum: Vec::new(),
        buffers: Vec::new(),
    };
    let driver = RoundDriver::new(cfg, global, None);
    let mut coord = Coordinator::bind(
        driver,
        CoordinatorConfig {
            addr: "127.0.0.1:0".into(),
            join_timeout: Duration::from_secs(180),
            round_timeout: Duration::from_secs(600),
            io_timeout: Duration::from_secs(60),
            max_frame: MAX_FRAME_PAYLOAD,
            checkpoint: None,
            topology: Default::default(),
            wal: None,
            quorum: 1.0,
        },
    )
    .expect("bind coordinator");
    println!("ADDR {}", coord.local_addr().expect("local addr"));
    std::io::stdout().flush().expect("flush addr");

    let joined = coord.wait_for_clients();
    let mut rounds = Vec::new();
    for _ in 0..scn.rounds {
        let rec = coord.run_round();
        rounds.push(json!({
            "collection_wall_s": rec.measured_wall_s,
            "survivors": rec.faults.survivors,
            "dropouts": rec.faults.dropouts,
            "corrupted_uploads": rec.faults.corrupted_uploads,
            "deadline_dropped": rec.faults.deadline_dropped,
            "no_op": rec.faults.no_op,
        }));
    }
    coord.finish().expect("finish session");

    let result = json!({
        "joined": joined,
        "decode_workers": rayon::current_num_threads(),
        "peak_rss_bytes": peak_rss_bytes(),
        "rounds": rounds,
    });
    println!("RESULT {result}");
}

// ---------------------------------------------------------------------------
// Swarm child
// ---------------------------------------------------------------------------

fn connect_with_retry(addr: &str) -> TcpStream {
    let mut delay = Duration::from_millis(20);
    for _ in 0..20 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(1));
            }
        }
    }
    panic!("swarm could not connect to {addr}");
}

/// Read one sealed frame, panicking on EOF or transport errors — the
/// bench has no legitimate mid-session disconnects.
fn must_read(stream: &mut TcpStream, what: &str) -> Vec<u8> {
    read_frame(stream, MAX_FRAME_PAYLOAD)
        .unwrap_or_else(|e| panic!("swarm read ({what}): {e}"))
        .unwrap_or_else(|| panic!("swarm read ({what}): connection closed"))
}

fn swarm_role(scn: Scenario, addr: String) {
    let cfg = scn.config();
    let fingerprint = session_fingerprint(&cfg);

    // One pre-encoded upload serves every client: the frames carry no
    // client identity (the RoundDone header does), so the coordinator
    // still pays full per-upload CRC + decode + fold cost.
    let template = LocalOutcome {
        client_id: 0,
        n_samples: 32,
        tau: 4,
        delta: (0..scn.params).map(|j| 1e-3 * (j % 7) as f32).collect(),
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: false,
        bytes: CommModel::dense(scn.params),
        wire: WireBytes::default(),
        frames: Vec::new(),
        keep_ratio: 1.0,
        flops_ratio: 1.0,
    };
    let upload = encode_upload(&cfg, &template);
    let upload_framed = upload.framed();

    // Register every client. Chunked so the listener's accept backlog
    // (~128 pending connections) never overflows: connect + Hello for a
    // chunk, then collect that chunk's Join verdicts while the next
    // chunk connects.
    let mut conns: Vec<TcpStream> = Vec::with_capacity(scn.clients);
    for chunk_start in (0..scn.clients).step_by(64) {
        let chunk_end = (chunk_start + 64).min(scn.clients);
        let mut pending = Vec::with_capacity(chunk_end - chunk_start);
        for id in chunk_start..chunk_end {
            let mut s = connect_with_retry(&addr);
            s.set_nodelay(true).expect("nodelay");
            let hello = Hello {
                client_id: id as u32,
                fingerprint,
                role: HelloRole::Client,
            };
            write_frame(&mut s, &seal(MsgType::Hello, &hello.encode())).expect("send hello");
            pending.push(s);
        }
        for mut s in pending {
            let frame = must_read(&mut s, "join");
            let (msg, payload) = open(&frame).expect("open join");
            assert_eq!(msg, MsgType::Join, "expected Join");
            assert!(
                Join::decode(payload).expect("decode join").accepted,
                "registration rejected"
            );
            conns.push(s);
        }
    }

    // Serve the assignments. The coordinator broadcasts ascending and
    // collects concurrently; replying ascending is simply the order the
    // assignments become readable. Each reply fits the kernel's socket
    // buffers, so a single-threaded swarm never deadlocks the round.
    for _ in 0..scn.rounds {
        for (id, stream) in conns.iter_mut().enumerate() {
            let assign = read_assignment(stream, "train");
            assert_eq!(assign.mode, RoundMode::Train);
            let done = RoundDone {
                round: assign.round,
                mode: RoundMode::Train,
                client_id: id as u32,
                n_samples: template.n_samples as u64,
                tau: template.tau as u64,
                diverged: false,
                keep_ratio: 1.0,
                flops_ratio: 1.0,
                accuracy: 0.0,
                bytes_download: template.bytes.download,
                bytes_upload: template.bytes.upload,
                upload_payload: upload.payload,
                upload_framed,
                n_frames: upload.frames.len() as u32,
            };
            write_frame(stream, &seal(MsgType::RoundDone, &done.encode())).expect("send done");
            for f in &upload.frames {
                write_frame(stream, f).expect("send upload frame");
            }
        }
        // Post-aggregation evaluation pass: sync frames in, accuracy out.
        for (id, stream) in conns.iter_mut().enumerate() {
            let assign = read_assignment(stream, "eval");
            assert_eq!(assign.mode, RoundMode::Eval);
            let done = RoundDone {
                round: assign.round,
                mode: RoundMode::Eval,
                client_id: id as u32,
                n_samples: 0,
                tau: 0,
                diverged: false,
                keep_ratio: 0.0,
                flops_ratio: 0.0,
                accuracy: 0.5,
                bytes_download: 0,
                bytes_upload: 0,
                upload_payload: 0,
                upload_framed: 0,
                n_frames: 0,
            };
            write_frame(stream, &seal(MsgType::RoundDone, &done.encode())).expect("send eval");
        }
    }

    // Clean shutdown: every connection should see the session end.
    for stream in conns.iter_mut() {
        if let Ok(Some(frame)) = read_frame(stream, MAX_FRAME_PAYLOAD) {
            let (msg, _) = open(&frame).expect("open shutdown");
            assert_eq!(msg, MsgType::Shutdown, "expected Shutdown");
        }
    }
}

/// Read a `RoundAssign` and drain its broadcast frames (the swarm does
/// not train, so the model bytes are read and dropped).
fn read_assignment(stream: &mut TcpStream, what: &str) -> RoundAssign {
    let frame = must_read(stream, what);
    let (msg, payload) = open(&frame).expect("open assignment");
    assert_eq!(msg, MsgType::RoundAssign, "expected RoundAssign");
    let assign = RoundAssign::decode(payload).expect("decode assignment");
    for _ in 0..assign.n_frames {
        must_read(stream, "broadcast frame");
    }
    assign
}

// ---------------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------------

/// Quick-mode ceiling on the coordinator child's peak RSS. Generous
/// against noise, tiny against the O(cohort · model) ≈ cohort-scaled
/// footprint this bench exists to rule out — the bound does not move
/// when the cohort grows.
const QUICK_PEAK_RSS_BOUND: u64 = 256 * 1024 * 1024;

fn orchestrate() {
    let quick = std::env::var("SPATL_EXP_SCALE").as_deref() == Ok("quick");
    let (cohorts, params) = if quick {
        (vec![32usize, 128], 1024usize)
    } else {
        (vec![100usize, 1000, 10_000], 2048usize)
    };
    let rounds = 1usize;
    let exe = std::env::current_exe().expect("own path");

    let mut series = Vec::new();
    for &clients in &cohorts {
        eprintln!("bench_net_snapshot: cohort {clients} × {params} params …");
        let mut coord = Command::new(&exe)
            .args([
                "coordinator",
                "--clients",
                &clients.to_string(),
                "--params",
                &params.to_string(),
                "--rounds",
                &rounds.to_string(),
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn coordinator child");
        let mut lines = BufReader::new(coord.stdout.take().expect("coordinator stdout")).lines();
        let addr_line = lines
            .next()
            .expect("coordinator printed nothing")
            .expect("read coordinator stdout");
        let addr = addr_line
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("expected ADDR line, got {addr_line:?}"))
            .to_string();

        let mut swarm = Command::new(&exe)
            .args([
                "swarm",
                "--addr",
                &addr,
                "--clients",
                &clients.to_string(),
                "--params",
                &params.to_string(),
                "--rounds",
                &rounds.to_string(),
            ])
            .spawn()
            .expect("spawn swarm child");

        let mut result: Option<serde_json::Value> = None;
        for line in lines {
            let line = line.expect("read coordinator stdout");
            if let Some(body) = line.strip_prefix("RESULT ") {
                result = Some(serde_json::from_str(body).expect("parse coordinator result"));
            }
        }
        assert!(
            coord.wait().expect("wait coordinator").success(),
            "coordinator child failed at cohort {clients}"
        );
        assert!(
            swarm.wait().expect("wait swarm").success(),
            "swarm child failed at cohort {clients}"
        );
        let result = result.expect("coordinator reported no RESULT");

        let joined = result["joined"].as_u64().expect("joined") as usize;
        assert_eq!(joined, clients, "not every client registered");
        let round = &result["rounds"][0];
        let survivors = round["survivors"].as_u64().expect("survivors") as usize;
        assert_eq!(
            survivors, clients,
            "lost uploads at cohort {clients}: {round}"
        );
        let wall_s = round["collection_wall_s"].as_f64().expect("wall");
        let peak_rss = result["peak_rss_bytes"].as_u64().expect("peak rss");
        let model_bytes = 4 * params as u64;
        if quick && peak_rss > 0 {
            assert!(
                peak_rss < QUICK_PEAK_RSS_BOUND,
                "coordinator peak RSS {peak_rss} B exceeds the \
                 cohort-independent bound {QUICK_PEAK_RSS_BOUND} B at cohort {clients}"
            );
        }
        series.push(json!({
            "clients": clients,
            "rounds": rounds,
            "survivors": survivors,
            "collection_wall_s": wall_s,
            "uploads_per_s": survivors as f64 / wall_s.max(1e-9),
            "coordinator_peak_rss_bytes": peak_rss,
            "decode_workers": result["decode_workers"],
            "cohort_model_bytes": clients as u64 * model_bytes,
            "faults": json!({
                "dropouts": round["dropouts"],
                "corrupted_uploads": round["corrupted_uploads"],
                "deadline_dropped": round["deadline_dropped"],
            }),
        }));
    }

    let out = json!({
        "bench": "net_snapshot",
        "schema": 1,
        "scale": if quick { "quick" } else { "full" },
        "algorithm": "FedAvg",
        "params": params,
        "model_bytes": 4 * params,
        "series": series,
    });
    let path = std::env::var("SPATL_BENCH_OUT").unwrap_or_else(|_| "BENCH_net.json".into());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("write {path}: {e}"));

    println!("# bench_net_snapshot → {path}");
    println!("clients | wall s | uploads/s | coordinator peak RSS | cohort·model");
    for s in out["series"].as_array().expect("series") {
        println!(
            "{:>7} | {:>6.2} | {:>9.0} | {:>17.1} MB | {:>9.1} MB",
            s["clients"],
            s["collection_wall_s"].as_f64().unwrap_or(0.0),
            s["uploads_per_s"].as_f64().unwrap_or(0.0),
            s["coordinator_peak_rss_bytes"].as_f64().unwrap_or(0.0) / 1e6,
            s["cohort_model_bytes"].as_f64().unwrap_or(0.0) / 1e6,
        );
    }
}
