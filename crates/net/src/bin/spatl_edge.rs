//! `spatl-edge` — one edge aggregator of a 2-tier federated session.
//!
//! Rebuilds the session deterministically from the same flags the root
//! server and the clients were started with, binds a client-facing
//! listener on `--addr`, connects upstream to the root at `--root-addr`,
//! and forwards combined uploads for its [`edge_partition`] slice until
//! the root shuts the session down (DESIGN.md §11).
//!
//! ```text
//! spatl-edge --root-addr 127.0.0.1:7878 --addr 127.0.0.1:7900 \
//!            --edges 2 --edge-id 0 --clients 4 --rounds 3 \
//!            --seed 7 --algorithm spatl
//! ```
//!
//! Clients whose ids fall in this edge's slice are started with
//! `spatl-client --addr 127.0.0.1:7900 ...` — they cannot tell an edge
//! from a root coordinator.
//!
//! [`edge_partition`]: spatl_fl::edge_partition

use spatl_bench::cli::{Args, NetOpts, RuntimeOpts, TierOpts};
use spatl_net::{EdgeAggregator, EdgeConfig, NetError};

fn main() -> Result<(), NetError> {
    let mut flags: Vec<&str> = NetOpts::FLAGS.to_vec();
    flags.extend(RuntimeOpts::FLAGS);
    flags.extend(TierOpts::FLAGS);
    let args = Args::parse(&flags);
    let opts = NetOpts::from_args(&args);
    let runtime = RuntimeOpts::from_args(&args);
    let tier = TierOpts::from_args(&args);
    assert!(
        tier.edges > 0,
        "--edges must be at least 1 for an edge aggregator"
    );

    let session = opts.build_session();
    let mut edge_opts = EdgeConfig::new(tier.edge_id, tier.edges, tier.root_addr, opts.addr);
    edge_opts.join_timeout = runtime.join_timeout;
    edge_opts.round_timeout = runtime.round_timeout;
    edge_opts.io_timeout = runtime.io_timeout;
    let edge = EdgeAggregator::bind(session.driver, edge_opts)?;
    let range = edge.client_range();
    eprintln!(
        "[edge {}] listening on {} for clients {}..{}, root at {} ({})",
        tier.edge_id,
        edge.local_addr()?,
        range.start,
        range.end,
        args.get("root-addr").unwrap_or("127.0.0.1:7878"),
        opts.algorithm.name(),
    );
    let report = edge.run()?;
    eprintln!(
        "[edge {}] done: forwarded {} rounds, evaluated {}, reconnected {} times",
        tier.edge_id, report.rounds_forwarded, report.rounds_evaluated, report.reconnects
    );
    Ok(())
}
