//! `spatl-server` — the networked federated coordinator.
//!
//! Binds a TCP listener, waits for the configured cohort of
//! `spatl-client` processes to register, runs the federated rounds over
//! the wire, then checkpoints (when `--checkpoint` is given) and shuts
//! the cohort down. Per-round records are printed as they complete and
//! written as a JSON artefact under `results/`.
//!
//! ```text
//! spatl-server --addr 127.0.0.1:7878 --clients 4 --rounds 3 \
//!              --seed 7 --algorithm spatl
//! ```
//!
//! Both endpoints must be started with the same session flags
//! (`--clients`, `--rounds`, `--seed`, `--algorithm`, `--samples`,
//! `--local-epochs`, `--batch`): the control-plane fingerprint rejects a
//! client whose configuration differs.

use spatl::load_global;
use spatl_bench::cli::{Args, NetOpts, RuntimeOpts, TierOpts};
use spatl_net::{Coordinator, CoordinatorConfig, NetError, Topology};

fn main() -> Result<(), NetError> {
    let mut flags: Vec<&str> = NetOpts::FLAGS.to_vec();
    flags.extend(RuntimeOpts::FLAGS);
    flags.extend(["checkpoint", "resume-rounds", "out"]);
    flags.extend(TierOpts::FLAGS);
    let args = Args::parse(&flags);
    let opts = NetOpts::from_args(&args);
    let runtime = RuntimeOpts::from_args(&args);
    let tier = TierOpts::from_args(&args);

    let session = opts.build_session();
    let mut driver = session.driver;

    // Resume: restore the checkpointed global state and burn the sampling
    // draws of the rounds already completed, so round k here samples the
    // cohort round k of the original run would have.
    let resume_rounds: usize = args.get_or("resume-rounds", 0);
    let checkpoint = args.get("checkpoint").map(std::path::PathBuf::from);
    if resume_rounds > 0 {
        let path = checkpoint
            .as_deref()
            .expect("--resume-rounds requires --checkpoint");
        driver.global = load_global(path)?;
        driver.advance_sampling(resume_rounds);
        eprintln!(
            "[server] resumed from {} at round {resume_rounds}",
            path.display()
        );
    }

    let topology = if tier.edges > 0 {
        Topology::Tiered { edges: tier.edges }
    } else {
        Topology::Flat
    };
    let coordinator_opts = CoordinatorConfig {
        addr: opts.addr.clone(),
        join_timeout: runtime.join_timeout,
        round_timeout: runtime.round_timeout,
        io_timeout: runtime.io_timeout,
        quorum: runtime.quorum,
        checkpoint,
        topology,
        wal: tier.wal.as_ref().map(std::path::PathBuf::from),
        ..CoordinatorConfig::default()
    };
    let mut coordinator = Coordinator::bind(driver, coordinator_opts)?;
    eprintln!(
        "[server] listening on {} for {} clients ({} rounds, {}{})",
        coordinator.local_addr()?,
        opts.clients,
        opts.rounds,
        opts.algorithm.name(),
        if tier.edges > 0 {
            format!(", {} edges", tier.edges)
        } else {
            String::new()
        },
    );
    if let Some(round) = coordinator.resumed_mid_round() {
        eprintln!("[server] round log recovery: replaying interrupted round {round}");
    }

    let joined = coordinator.wait_for_clients();
    if tier.edges > 0 {
        eprintln!("[server] {joined}/{} edges registered", tier.edges);
    } else {
        eprintln!("[server] {joined}/{} clients registered", opts.clients);
    }
    while coordinator.driver.round_index() < coordinator.driver.cfg.rounds
        && !coordinator.shutdown_requested()
    {
        let r = coordinator.run_round();
        eprintln!(
            "[server] round {:>3}  acc {:.3}  wire {:>10} B  predicted {:.3}s  measured {:.3}s  \
             survivors {}/{}",
            r.round,
            r.mean_acc,
            r.wire.total_framed(),
            r.transfer_wall_s,
            r.measured_wall_s,
            r.faults.survivors,
            r.faults.sampled,
        );
    }
    let completed = !coordinator.shutdown_requested();
    coordinator.finish()?;

    let history = &coordinator.driver.history;
    let artefact = serde_json::json!({
        "algorithm": coordinator.driver.cfg.algorithm.name(),
        "clients": coordinator.driver.cfg.n_clients,
        "seed": coordinator.driver.cfg.seed,
        "completed": completed,
        "rounds": history.len(),
        "final_acc": history.last().map(|r| f64::from(r.mean_acc)).unwrap_or(0.0),
        "measured_wall_s": history.iter().map(|r| r.measured_wall_s).sum::<f64>(),
        "predicted_wall_s": history.iter().map(|r| r.transfer_wall_s).sum::<f64>(),
        "framed_bytes": history.iter().map(|r| r.wire.total_framed()).sum::<u64>(),
    });
    spatl_bench::write_json(args.get("out").unwrap_or("net_loopback"), &artefact);
    eprintln!(
        "[server] {} after {} rounds",
        if completed { "completed" } else { "shut down" },
        history.len()
    );
    Ok(())
}
