//! The server side of the networked runtime: a TCP listener around the
//! shared [`RoundDriver`] round engine.
//!
//! Thread model: the coordinator is single-threaded and blocking. The
//! listener itself is non-blocking (so mid-run rejoins are picked up
//! between rounds), but every registered connection is a blocking socket
//! with explicit read/write deadlines — a round can therefore never hang
//! on one client, only time it out and ledger it. Clients supply the
//! concurrency: each node trains in its own process (or thread), and the
//! round barrier here simply collects whatever arrives before each
//! connection's deadline, in ascending client-id order — the same
//! collection order the simulator's parallel loop preserves, which the
//! f32 aggregation folds depend on for bit-identical results.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use spatl::save_global;
use spatl_fl::{
    FaultKind, FaultRecord, LocalOutcome, RoundBytes, RoundDriver, RoundRecord, TransportStats,
    WireBytes,
};
use spatl_wire::{open, read_frame, seal, write_frame, MsgType, StreamError, MAX_FRAME_PAYLOAD};

use crate::proto::{session_fingerprint, Hello, Join, RoundAssign, RoundDone, RoundMode};
use crate::NetError;

/// Tunables of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to listen on; port 0 picks a free port (see
    /// [`Coordinator::local_addr`]).
    pub addr: String,
    /// How long [`Coordinator::wait_for_clients`] waits for the full
    /// cohort to register before starting with whoever showed up.
    pub join_timeout: Duration,
    /// Per-connection read deadline while collecting a round's upload (or
    /// an evaluation report). Covers the client's local training, so it is
    /// the networked analogue of the fault model's collection deadline: a
    /// client that exceeds it is ledgered as
    /// [`FaultKind::DeadlineMissed`] and excluded from the round.
    pub round_timeout: Duration,
    /// Per-connection write deadline (broadcasts) and handshake read
    /// deadline.
    pub io_timeout: Duration,
    /// Upper bound on a single frame's payload accepted from a client.
    pub max_frame: usize,
    /// Where to persist the global state when the run ends or a client
    /// requests shutdown; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            join_timeout: Duration::from_secs(30),
            round_timeout: Duration::from_secs(300),
            io_timeout: Duration::from_secs(30),
            max_frame: MAX_FRAME_PAYLOAD,
            checkpoint: None,
        }
    }
}

/// Why collecting one client's upload failed.
enum CollectFailure {
    /// The connection produced no complete reply before the round
    /// deadline; the client may still be training.
    Timeout,
    /// The connection is gone (EOF, reset, write failure, or a stream
    /// that stopped making protocol sense).
    Disconnect,
    /// The client sent a `Shutdown` frame instead of an upload.
    Shutdown,
    /// The reply arrived intact at the framing layer but its payload was
    /// rejected by the decode path (CRC or codec failure).
    Corrupt(String),
}

/// One successfully collected upload, before decoding.
struct Collected {
    meta: LocalOutcome,
    frames: Vec<Vec<u8>>,
    /// Seconds spent reading the upload frames *after* the header
    /// arrived — transfer time, not training time.
    read_s: f64,
}

/// The networked federated server: the shared [`RoundDriver`] engine plus
/// one registered TCP connection per client node.
pub struct Coordinator {
    /// The transport-independent round engine (identical to the one the
    /// simulator embeds). Public so callers can inspect the global state
    /// and history, and so resume flows can restore a checkpoint into it.
    pub driver: RoundDriver,
    opts: CoordinatorConfig,
    listener: TcpListener,
    conns: Vec<Option<TcpStream>>,
    fingerprint: u64,
    shutdown_requested: bool,
}

impl Coordinator {
    /// Bind the listener and wrap the driver. No clients are accepted
    /// until [`Coordinator::wait_for_clients`] (or a round) runs.
    pub fn bind(driver: RoundDriver, opts: CoordinatorConfig) -> Result<Self, NetError> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let n = driver.cfg.n_clients;
        let fingerprint = session_fingerprint(&driver.cfg);
        Ok(Coordinator {
            driver,
            opts,
            listener,
            conns: (0..n).map(|_| None).collect(),
            fingerprint,
            shutdown_requested: false,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Number of currently registered client connections.
    pub fn connected(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Whether a client asked the session to stop ([`MsgType::Shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }

    /// Accept and register every connection currently pending on the
    /// listener. Handshake failures (bad `Hello`, fingerprint mismatch)
    /// reject that socket and keep listening.
    pub fn accept_pending(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = self.handshake(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Block until every client id has a registered connection or
    /// `join_timeout` elapses; returns how many are registered. Missing
    /// clients are not fatal — when sampled they are ledgered as dropouts.
    pub fn wait_for_clients(&mut self) -> usize {
        let deadline = Instant::now() + self.opts.join_timeout;
        loop {
            self.accept_pending();
            let connected = self.connected();
            if connected == self.conns.len() || Instant::now() >= deadline {
                return connected;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Register one incoming socket: expect a sealed [`Hello`], verify the
    /// client id and session fingerprint, reply with a [`Join`] verdict.
    fn handshake(&mut self, mut stream: TcpStream) -> Result<(), NetError> {
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.opts.io_timeout))?;
        stream.set_write_timeout(Some(self.opts.io_timeout))?;
        let frame = read_frame(&mut stream, self.opts.max_frame)?
            .ok_or_else(|| NetError::Protocol("connection closed before Hello".into()))?;
        let (msg, payload) = open(&frame)?;
        if msg != MsgType::Hello {
            return Err(NetError::Protocol(format!("expected Hello, got {msg:?}")));
        }
        let hello = Hello::decode(payload)?;
        let id = hello.client_id as usize;
        let accepted = id < self.conns.len() && hello.fingerprint == self.fingerprint;
        let verdict = Join {
            accepted,
            round: self.driver.round_index() as u32,
        };
        write_frame(&mut stream, &seal(MsgType::Join, &verdict.encode()))?;
        if accepted {
            // Latest registration wins: a reconnecting node replaces its
            // dead predecessor.
            self.conns[id] = Some(stream);
            Ok(())
        } else {
            Err(NetError::Rejected)
        }
    }

    /// Send one round assignment plus the broadcast frames to one client.
    fn send_assignment(
        &mut self,
        id: usize,
        round: u32,
        mode: RoundMode,
        frames: &[Vec<u8>],
    ) -> Result<(), NetError> {
        let stream = self.conns[id].as_mut().ok_or(NetError::Disconnected)?;
        let assign = RoundAssign {
            round,
            mode,
            n_frames: frames.len() as u32,
        };
        write_frame(stream, &seal(MsgType::RoundAssign, &assign.encode()))?;
        for f in frames {
            write_frame(stream, f)?;
        }
        Ok(())
    }

    fn classify(e: &StreamError) -> CollectFailure {
        match e {
            StreamError::Io(io)
                if matches!(
                    io.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                CollectFailure::Timeout
            }
            _ => CollectFailure::Disconnect,
        }
    }

    /// Round barrier, one connection's worth: block (up to the round
    /// deadline) for the client's [`RoundDone`] header, then read its
    /// upload frames. The deadline covers local training; the measured
    /// `read_s` starts after the header arrives so it reflects transfer
    /// only.
    fn collect_upload(&mut self, id: usize, round: u32) -> Result<Collected, CollectFailure> {
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        let stream = match self.conns[id].as_mut() {
            Some(s) => s,
            None => return Err(CollectFailure::Disconnect),
        };
        if stream.set_read_timeout(Some(round_timeout)).is_err() {
            return Err(CollectFailure::Disconnect);
        }
        let header = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let (msg, payload) = match open(&header) {
            Ok(x) => x,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        match msg {
            MsgType::Shutdown => return Err(CollectFailure::Shutdown),
            MsgType::RoundDone => {}
            _ => return Err(CollectFailure::Disconnect),
        }
        let done = match RoundDone::decode(payload) {
            Ok(d) => d,
            Err(e) => return Err(CollectFailure::Corrupt(e.to_string())),
        };
        if done.round != round || done.client_id as usize != id || done.mode != RoundMode::Train {
            return Err(CollectFailure::Disconnect);
        }
        let started = Instant::now();
        let mut frames = Vec::with_capacity(done.n_frames as usize);
        for _ in 0..done.n_frames {
            match read_frame(stream, max_frame) {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => return Err(CollectFailure::Disconnect),
                Err(e) => return Err(Self::classify(&e)),
            }
        }
        Ok(Collected {
            meta: Self::meta_outcome(&done),
            frames,
            read_s: started.elapsed().as_secs_f64(),
        })
    }

    /// Rebuild the bookkeeping half of a [`LocalOutcome`] from the
    /// client's [`RoundDone`] header; every tensor field stays empty until
    /// [`RoundDriver::decode_client_upload`] fills it from the frames.
    fn meta_outcome(done: &RoundDone) -> LocalOutcome {
        LocalOutcome {
            client_id: done.client_id as usize,
            n_samples: done.n_samples as usize,
            tau: done.tau as usize,
            delta: Vec::new(),
            selected: None,
            control_delta: None,
            velocity: None,
            buffers: Vec::new(),
            diverged: done.diverged,
            bytes: RoundBytes {
                download: done.bytes_download,
                upload: done.bytes_upload,
            },
            wire: WireBytes {
                download_payload: 0,
                download_framed: 0,
                upload_payload: done.upload_payload,
                upload_framed: done.upload_framed,
            },
            frames: Vec::new(),
            keep_ratio: done.keep_ratio,
            flops_ratio: done.flops_ratio,
        }
    }

    /// Run one communication round over the network; returns its record.
    ///
    /// Mirrors the simulator's round skeleton exactly — one sampling draw,
    /// broadcast, collect, screen + aggregate, evaluate, record — with
    /// real transport faults taking the place of injected ones: a
    /// connection that dies mid-round is a ledgered
    /// [`FaultKind::Dropout`], one that misses the deadline a
    /// [`FaultKind::DeadlineMissed`], and a reply that fails the decode
    /// path a [`FaultKind::CorruptUpload`]. The round always completes.
    pub fn run_round(&mut self) -> RoundRecord {
        self.accept_pending();
        let round = self.driver.round_index();
        let sampled = self.driver.sample_round();
        let mut faults = FaultRecord::for_sample(sampled.len());

        // Broadcast to the sampled cohort, ascending client-id order.
        let down = self.driver.broadcast();
        let broadcast_started = Instant::now();
        let mut participants: Vec<usize> = Vec::new();
        for &id in &sampled {
            if self.conns[id].is_some()
                && self
                    .send_assignment(id, round as u32, RoundMode::Train, &down.frames)
                    .is_ok()
            {
                participants.push(id);
            } else {
                self.conns[id] = None;
                faults.push(id, FaultKind::Dropout);
            }
        }
        let mut measured_s = broadcast_started.elapsed().as_secs_f64();

        if participants.is_empty() {
            faults.no_op = true;
            let per_client_acc = self.evaluate_round(round as u32);
            return self.driver.noop_round(per_client_acc, faults);
        }

        // Round barrier: collect uploads in ascending client-id order (the
        // aggregation fold order both runtimes share).
        let mut outcomes: Vec<LocalOutcome> = Vec::new();
        let mut survivors: Vec<LocalOutcome> = Vec::new();
        let mut wire_total = WireBytes::default();
        let mut wall_clock_s = 0f64;
        let mut device_seconds = 0f64;
        for &id in &participants {
            match self.collect_upload(id, round as u32) {
                Ok(collected) => {
                    let mut o = collected.meta;
                    o.wire.download_payload = down.payload;
                    o.wire.download_framed = down.framed();
                    measured_s += collected.read_s;
                    if o.diverged {
                        faults.push(id, FaultKind::LocalDivergence);
                    }
                    match self.driver.decode_client_upload(&o, &collected.frames) {
                        Ok(d) => survivors.push(d),
                        Err(e) => {
                            // The framing layer delivered the reply but the
                            // payload failed the CRC/codec checks. TCP already
                            // retransmits damaged segments, so there is no
                            // retry protocol here — the upload is excluded.
                            faults.push(
                                id,
                                FaultKind::CorruptUpload {
                                    error: e.to_string(),
                                },
                            );
                            faults.push(id, FaultKind::RetriesExhausted);
                        }
                    }
                    wire_total.accumulate(&o.wire);
                    let t = self.driver.net.client_time(
                        o.wire.download_framed as usize,
                        o.wire.upload_framed as usize,
                    );
                    device_seconds += t;
                    wall_clock_s = wall_clock_s.max(t);
                    outcomes.push(o);
                }
                Err(CollectFailure::Timeout) => {
                    faults.push(id, FaultKind::DeadlineMissed);
                    self.conns[id] = None;
                }
                Err(CollectFailure::Disconnect) => {
                    faults.push(id, FaultKind::Dropout);
                    self.conns[id] = None;
                }
                Err(CollectFailure::Shutdown) => {
                    self.shutdown_requested = true;
                    faults.push(id, FaultKind::Dropout);
                    self.conns[id] = None;
                }
                Err(CollectFailure::Corrupt(error)) => {
                    faults.push(id, FaultKind::CorruptUpload { error });
                    faults.push(id, FaultKind::RetriesExhausted);
                    self.conns[id] = None;
                }
            }
        }

        // Screening + aggregation through the shared driver — identical to
        // the simulator from here on.
        self.driver.screen_and_aggregate(survivors, &mut faults);
        let per_client_acc = self.evaluate_round(round as u32);
        self.driver.finish_round(
            &outcomes,
            TransportStats {
                wire: wire_total,
                transfer_wall_s: wall_clock_s,
                transfer_device_s: device_seconds,
                measured_wall_s: measured_s,
            },
            per_client_acc,
            faults,
        )
    }

    /// Evaluation pass: every live client syncs the (post-aggregation)
    /// global state and reports validation accuracy. The networked
    /// analogue of the simulator's in-process `evaluate_all`; clients
    /// without a live connection contribute 0.0. Excluded from wire
    /// accounting, like the simulator's evaluation.
    fn evaluate_round(&mut self, round: u32) -> Vec<f32> {
        let down = self.driver.broadcast();
        let n = self.conns.len();
        let mut pending: Vec<usize> = Vec::new();
        for id in 0..n {
            if self.conns[id].is_none() {
                continue;
            }
            if self
                .send_assignment(id, round, RoundMode::Eval, &down.frames)
                .is_ok()
            {
                pending.push(id);
            } else {
                self.conns[id] = None;
            }
        }
        let mut acc = vec![0.0f32; n];
        for id in pending {
            match self.collect_eval(id, round) {
                Ok(a) => acc[id] = a,
                Err(CollectFailure::Shutdown) => {
                    self.shutdown_requested = true;
                    self.conns[id] = None;
                }
                Err(_) => {
                    self.conns[id] = None;
                }
            }
        }
        acc
    }

    /// Read one client's evaluation report.
    fn collect_eval(&mut self, id: usize, round: u32) -> Result<f32, CollectFailure> {
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        let stream = match self.conns[id].as_mut() {
            Some(s) => s,
            None => return Err(CollectFailure::Disconnect),
        };
        if stream.set_read_timeout(Some(round_timeout)).is_err() {
            return Err(CollectFailure::Disconnect);
        }
        let frame = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let (msg, payload) = match open(&frame) {
            Ok(x) => x,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        match msg {
            MsgType::Shutdown => return Err(CollectFailure::Shutdown),
            MsgType::RoundDone => {}
            _ => return Err(CollectFailure::Disconnect),
        }
        let done = match RoundDone::decode(payload) {
            Ok(d) => d,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        if done.round != round || done.client_id as usize != id || done.mode != RoundMode::Eval {
            return Err(CollectFailure::Disconnect);
        }
        Ok(done.accuracy)
    }

    /// End the session: checkpoint the global state (when configured) and
    /// broadcast [`MsgType::Shutdown`] so every node exits cleanly.
    pub fn finish(&mut self) -> Result<(), NetError> {
        if let Some(path) = self.opts.checkpoint.clone() {
            save_global(&self.driver.global, &path)?;
        }
        let bye = seal(MsgType::Shutdown, &[]);
        for conn in self.conns.iter_mut() {
            if let Some(stream) = conn.as_mut() {
                let _ = write_frame(stream, &bye);
            }
            *conn = None;
        }
        Ok(())
    }

    /// Run the full session: wait for the cohort, drive every configured
    /// round (stopping early if a client requests shutdown), then
    /// checkpoint and broadcast [`MsgType::Shutdown`]. Returns `true` when
    /// all rounds ran, `false` on an early client-requested shutdown — the
    /// checkpoint then holds the state to resume from (see
    /// [`RoundDriver::advance_sampling`]).
    pub fn run(&mut self) -> Result<bool, NetError> {
        self.wait_for_clients();
        while self.driver.round_index() < self.driver.cfg.rounds && !self.shutdown_requested {
            self.run_round();
        }
        let completed = !self.shutdown_requested;
        self.finish()?;
        Ok(completed)
    }
}
