//! The server side of the networked runtime: a TCP listener around the
//! shared [`RoundDriver`] round engine.
//!
//! Thread model (DESIGN.md §12): control-plane traffic — handshakes,
//! broadcasts, evaluation passes, the tiered round's few edge links —
//! is single-threaded and blocking with explicit deadlines, exactly as
//! before. The flat round's *upload collection* is concurrent: after
//! the broadcast every participant socket switches to non-blocking and
//! one readiness sweep drives a per-connection frame-assembly state
//! machine (`ConnGather`), handing each completed upload to a small
//! decode worker pool the moment its last frame arrives. Decoded
//! updates stream straight into the round's order-independent
//! [`RoundAccumulator`](spatl_fl::RoundAccumulator), so the coordinator
//! never holds the cohort in memory — an admission window bounds
//! buffered uploads at O(workers), independent of cohort size, with TCP
//! receive-window backpressure parking the rest in kernel buffers.
//! Completion order is non-deterministic, but everything order-sensitive
//! (fault ledger events, outcome bookkeeping, transfer-time folds) is
//! re-sorted by client id before it is recorded, and the accumulator's
//! fold is order-independent by construction — so records and global
//! state stay bit-identical to the simulator's ascending-id sweep. A
//! round still never hangs on one client: a single collection deadline
//! (`round_timeout` from broadcast) ledgers whoever is missing.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spatl::{save_global, RoundLog};
use spatl_fl::{
    aggregate_reduced, churn_departures, decode_upload, edge_partition, entry_outcome,
    exact_composition, fold_exact, fold_fault_counters, ChaosInjector, FaultKind, FaultRecord,
    LocalOutcome, RoundDriver, RoundRecord, TransportStats, WireBytes,
};
use spatl_wire::{
    decode_edge_combined, open, read_frame, seal, write_frame, EdgeCombined, EdgeReduced, MsgType,
    StreamError, HEADER_LEN, MAX_FRAME_PAYLOAD,
};

use crate::gather::{meta_outcome, CollectFailure, ConnGather, GatherPoll};
use crate::proto::{
    session_fingerprint, Hello, HelloRole, Join, RoundAssign, RoundDone, RoundMode,
};
use crate::NetError;

/// Who the coordinator's listener terminates: clients directly (the flat
/// star of PR 5) or edge aggregators speaking the combined-upload frame
/// (DESIGN.md §11).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Topology {
    /// Every connection is one client node.
    #[default]
    Flat,
    /// Every connection is one `spatl-edge` aggregator; clients connect
    /// to the edges. Client ids are split over the edges in contiguous
    /// near-equal slices ([`edge_partition`]), and each connection's
    /// `Hello.client_id` is its *edge* id.
    Tiered {
        /// Number of edge aggregators.
        edges: usize,
    },
}

/// Tunables of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to listen on; port 0 picks a free port (see
    /// [`Coordinator::local_addr`]).
    pub addr: String,
    /// How long [`Coordinator::wait_for_clients`] waits for the full
    /// cohort to register before starting with whoever showed up.
    pub join_timeout: Duration,
    /// Per-connection read deadline while collecting a round's upload (or
    /// an evaluation report). Covers the client's local training, so it is
    /// the networked analogue of the fault model's collection deadline: a
    /// client that exceeds it is ledgered as
    /// [`FaultKind::DeadlineMissed`] and excluded from the round.
    pub round_timeout: Duration,
    /// Per-connection write deadline (broadcasts) and handshake read
    /// deadline.
    pub io_timeout: Duration,
    /// Upper bound on a single frame's payload accepted from a client.
    pub max_frame: usize,
    /// Where to persist the global state when the run ends or a client
    /// requests shutdown; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// What the listener terminates: client nodes or edge aggregators.
    pub topology: Topology,
    /// Durable write-ahead round log ([`RoundLog`]). When the file
    /// already exists [`Coordinator::bind`] recovers it — restoring the
    /// last durable global state and resuming *mid-round* if a `begin`
    /// was never committed; otherwise a fresh log is created. `None`
    /// disables mid-round durability.
    pub wal: Option<PathBuf>,
    /// Quorum fraction for the flat round commit, in `(0, 1]`. Once at
    /// least `ceil(quorum · participants)` uploads of a round have
    /// folded, collection ends immediately and the shortfall is ledgered
    /// as [`FaultKind::Dropout`] — a handful of stragglers can no longer
    /// hold the round open until `round_timeout`. The default `1.0`
    /// keeps the historical behaviour (and bit-level determinism): every
    /// participant is awaited until it completes, fails, or the deadline
    /// falls. With `quorum < 1.0` the folded subset depends on arrival
    /// order, so two runs may commit different (valid) cohorts.
    pub quorum: f64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            join_timeout: Duration::from_secs(30),
            round_timeout: Duration::from_secs(300),
            io_timeout: Duration::from_secs(30),
            max_frame: MAX_FRAME_PAYLOAD,
            checkpoint: None,
            topology: Topology::Flat,
            wal: None,
            quorum: 1.0,
        }
    }
}

/// The networked federated server: the shared [`RoundDriver`] engine plus
/// one registered TCP connection per client node.
pub struct Coordinator {
    /// The transport-independent round engine (identical to the one the
    /// simulator embeds). Public so callers can inspect the global state
    /// and history, and so resume flows can restore a checkpoint into it.
    pub driver: RoundDriver,
    opts: CoordinatorConfig,
    listener: TcpListener,
    conns: Vec<Option<TcpStream>>,
    /// Client-id slice served by each connection: one singleton range per
    /// client when flat, one [`edge_partition`] slice per edge when
    /// tiered.
    ranges: Vec<Range<usize>>,
    /// Tiered-topology failover lane (DESIGN.md §14): clients of a dead
    /// edge that re-registered directly at the root, indexed by global
    /// client id. Always empty when flat (clients live in `conns`).
    direct: Vec<Option<TcpStream>>,
    fingerprint: u64,
    shutdown_requested: bool,
    wal: Option<RoundLog>,
    resumed_mid_round: Option<usize>,
}

impl Coordinator {
    /// Bind the listener and wrap the driver. No clients are accepted
    /// until [`Coordinator::wait_for_clients`] (or a round) runs.
    ///
    /// When `opts.wal` names an existing file, the round log is recovered
    /// first: the driver's global state and sampling stream are advanced
    /// to the last durable round boundary, and an uncommitted `begin`
    /// makes the next [`Coordinator::run_round`] replay exactly the
    /// interrupted round (see [`Coordinator::resumed_mid_round`]).
    pub fn bind(mut driver: RoundDriver, opts: CoordinatorConfig) -> Result<Self, NetError> {
        if !(opts.quorum > 0.0 && opts.quorum <= 1.0) {
            return Err(NetError::Protocol(format!(
                "quorum fraction must be in (0, 1], got {}",
                opts.quorum
            )));
        }
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let n = driver.cfg.n_clients;
        let fingerprint = session_fingerprint(&driver.cfg);
        let ranges = match opts.topology {
            Topology::Flat => (0..n).map(|c| c..c + 1).collect(),
            Topology::Tiered { edges } => edge_partition(n, edges),
        };

        let mut wal = None;
        let mut resumed_mid_round = None;
        if let Some(path) = &opts.wal {
            if path.exists() {
                let (recovery, log) = RoundLog::recover(path)?;
                if recovery.fingerprint != fingerprint {
                    return Err(NetError::Protocol(format!(
                        "round log {} belongs to another session \
                         (fingerprint {:#x}, ours {:#x})",
                        path.display(),
                        recovery.fingerprint,
                        fingerprint
                    )));
                }
                match recovery.pending {
                    Some(pending) => {
                        // Killed mid-round: restore the state the cohort
                        // trained against and burn the sampling draws of
                        // the completed rounds — the next sample_round()
                        // redraws the interrupted round's cohort.
                        driver.global = pending.global;
                        driver.advance_sampling(pending.round as usize);
                        resumed_mid_round = Some(pending.round as usize);
                    }
                    None => {
                        if let Some(global) = recovery.global {
                            driver.global = global;
                        }
                        driver.advance_sampling(recovery.completed as usize);
                    }
                }
                wal = Some(log);
            } else {
                wal = Some(RoundLog::create(path, fingerprint)?);
            }
        }

        let direct = match opts.topology {
            Topology::Flat => Vec::new(),
            Topology::Tiered { .. } => (0..n).map(|_| None).collect(),
        };
        Ok(Coordinator {
            driver,
            listener,
            conns: (0..ranges.len()).map(|_| None).collect(),
            ranges,
            direct,
            fingerprint,
            shutdown_requested: false,
            wal,
            resumed_mid_round,
            opts,
        })
    }

    /// The round a write-ahead-log recovery is replaying, if this
    /// coordinator resumed from an uncommitted `begin`.
    pub fn resumed_mid_round(&self) -> Option<usize> {
        self.resumed_mid_round
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Number of currently registered client connections.
    pub fn connected(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Whether a client asked the session to stop ([`MsgType::Shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }

    /// Accept and register every connection currently pending on the
    /// listener. Handshake failures (bad `Hello`, fingerprint mismatch)
    /// reject that socket and keep listening.
    pub fn accept_pending(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = self.handshake(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Block until every client id has a registered connection or
    /// `join_timeout` elapses; returns how many are registered. Missing
    /// clients are not fatal — when sampled they are ledgered as dropouts.
    pub fn wait_for_clients(&mut self) -> usize {
        let deadline = Instant::now() + self.opts.join_timeout;
        loop {
            self.accept_pending();
            let connected = self.connected();
            if connected == self.conns.len() || Instant::now() >= deadline {
                return connected;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Register one incoming socket: expect a sealed [`Hello`], verify
    /// role, id and session fingerprint, reply with a [`Join`] verdict.
    ///
    /// Flat topology accepts client roles only. Tiered topology accepts
    /// edges into `conns` — and, as the failover lane, clients whose home
    /// edge connection is currently dead into `direct` (a client dialing
    /// the root while its edge is alive is rejected and bounces back to
    /// the edge).
    fn handshake(&mut self, mut stream: TcpStream) -> Result<(), NetError> {
        let round = self.driver.round_index() as u32;
        let hello = read_hello(&mut stream, self.opts.io_timeout, self.opts.max_frame)?;
        let id = hello.client_id as usize;
        let fingerprint_ok = hello.fingerprint == self.fingerprint;
        let accepted = fingerprint_ok
            && match (&self.opts.topology, hello.role) {
                (Topology::Flat, HelloRole::Client) => id < self.conns.len(),
                (Topology::Flat, HelloRole::Edge) => false,
                (Topology::Tiered { .. }, HelloRole::Edge) => id < self.conns.len(),
                (Topology::Tiered { .. }, HelloRole::Client) => {
                    id < self.direct.len()
                        && self
                            .ranges
                            .iter()
                            .position(|r| r.contains(&id))
                            .is_some_and(|home| self.conns[home].is_none())
                }
            };
        let verdict = Join { accepted, round };
        write_frame(&mut stream, &seal(MsgType::Join, &verdict.encode()))?;
        if !accepted {
            return Err(NetError::Rejected);
        }
        // Latest registration wins: a reconnecting node replaces its
        // dead predecessor.
        match hello.role {
            HelloRole::Client if matches!(self.opts.topology, Topology::Tiered { .. }) => {
                self.direct[id] = Some(stream);
            }
            _ => self.conns[id] = Some(stream),
        }
        Ok(())
    }

    /// Send one round assignment plus the broadcast frames to one client.
    fn send_assignment(
        &mut self,
        id: usize,
        round: u32,
        mode: RoundMode,
        frames: &[Vec<u8>],
    ) -> Result<(), NetError> {
        let stream = self.conns[id].as_mut().ok_or(NetError::Disconnected)?;
        let assign = RoundAssign {
            round,
            mode,
            n_frames: frames.len() as u32,
        };
        write_frame(stream, &seal(MsgType::RoundAssign, &assign.encode()))?;
        for f in frames {
            write_frame(stream, f)?;
        }
        Ok(())
    }

    /// Forward one assignment plus the download frames over a client's
    /// direct failover connection; returns whether every write succeeded.
    fn send_direct_assignment(
        &mut self,
        c: usize,
        round: u32,
        mode: RoundMode,
        frames: &[Vec<u8>],
    ) -> bool {
        let Some(stream) = self.direct[c].as_mut() else {
            return false;
        };
        let assign = RoundAssign {
            round,
            mode,
            n_frames: frames.len() as u32,
        };
        if write_frame(stream, &seal(MsgType::RoundAssign, &assign.encode())).is_err() {
            return false;
        }
        frames.iter().all(|f| write_frame(stream, f).is_ok())
    }

    /// Ledger a dead edge's sampled slice at the root. Clients holding a
    /// direct failover connection move to the failover lane (exactly
    /// composable aggregators only); churn departures and everyone else
    /// are ledgered — the root degrades gracefully instead of stalling
    /// the round on a dead partition.
    fn ledger_dead_edge(
        &mut self,
        slice: &[usize],
        round: usize,
        kind: FaultKind,
        exact: bool,
        faults: &mut FaultRecord,
        failover: &mut Vec<usize>,
    ) {
        faults.sampled += slice.len();
        let departures = churn_departures(&self.driver.cfg, round, slice);
        for &c in slice {
            if departures.contains(&c) {
                faults.push(c, FaultKind::Dropout);
            } else if exact && self.direct.get(c).is_some_and(|d| d.is_some()) {
                failover.push(c);
            } else {
                faults.push(c, kind.clone());
            }
        }
    }

    fn classify(e: &StreamError) -> CollectFailure {
        match e {
            StreamError::Io(io)
                if matches!(
                    io.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                CollectFailure::Timeout
            }
            _ => CollectFailure::Disconnect,
        }
    }

    /// Durably record a round boundary; a failing log disables itself
    /// (loudly) rather than taking the session down.
    fn wal_begin(&mut self, round: usize, sampled: &[usize]) {
        let result = match self.wal.as_mut() {
            Some(log) => log.begin(round, sampled, &self.driver.global),
            None => return,
        };
        if let Err(e) = result {
            eprintln!("round log append failed ({e}); durable resume disabled");
            self.wal = None;
        }
    }

    /// Durably record a round's post-aggregation state (see
    /// [`Coordinator::wal_begin`] for the failure policy).
    fn wal_commit(&mut self, round: usize) {
        let result = match self.wal.as_mut() {
            Some(log) => log.commit(round, &self.driver.global),
            None => return,
        };
        if let Err(e) = result {
            eprintln!("round log append failed ({e}); durable resume disabled");
            self.wal = None;
        }
    }

    /// Run one communication round over the network; returns its record.
    ///
    /// Mirrors the simulator's round skeleton exactly — one sampling draw,
    /// broadcast, collect, screen + aggregate, evaluate, record — with
    /// real transport faults taking the place of injected ones: a
    /// connection that dies mid-round is a ledgered
    /// [`FaultKind::Dropout`], one that misses the deadline a
    /// [`FaultKind::DeadlineMissed`], and a reply that fails the decode
    /// path a [`FaultKind::CorruptUpload`]. The round always completes.
    ///
    /// With a round log configured, the round is bracketed by a durable
    /// `begin` (before any assignment leaves) and `commit` (after the
    /// record is final) — the crash window in between is exactly what
    /// [`Coordinator::bind`] replays.
    pub fn run_round(&mut self) -> RoundRecord {
        self.accept_pending();
        let round = self.driver.round_index();
        let sampled = self.driver.sample_round();
        self.wal_begin(round, &sampled);
        self.resumed_mid_round = None;
        let record = match self.opts.topology {
            Topology::Flat => self.flat_round(round, sampled),
            Topology::Tiered { .. } => self.tiered_round(round, sampled),
        };
        self.wal_commit(round);
        record
    }

    /// The flat round body: every connection is one client.
    ///
    /// Collection is concurrent (module docs, DESIGN.md §12): the
    /// broadcast stays blocking and ascending, then every participant
    /// socket goes non-blocking and a readiness sweep drives one
    /// `ConnGather` per connection, feeding a decode worker pool that
    /// folds each upload into the round's accumulator the moment it
    /// finishes framing. The cohort is never resident: at most
    /// `4·workers + 16` uploads are buffered outside the kernel at once.
    /// Fault events and outcome bookkeeping are queued in completion
    /// order and re-sorted by client id before anything is recorded.
    fn flat_round(&mut self, round: usize, sampled: Vec<usize>) -> RoundRecord {
        let mut faults = FaultRecord::for_sample(sampled.len());
        let chaos = self.driver.cfg.chaos.map(ChaosInjector::new);
        // Clients the churn model schedules to leave mid-round: they
        // never see the broadcast, exactly like the simulator's filter.
        let departures = churn_departures(&self.driver.cfg, round, &sampled);

        // Broadcast to the sampled cohort, ascending client-id order
        // (blocking writes under the io deadline).
        let down = self.driver.broadcast();
        let phase_started = Instant::now();
        let mut participants: Vec<usize> = Vec::new();
        for &id in &sampled {
            if departures.contains(&id) {
                faults.push(id, FaultKind::Dropout);
            } else if self.conns[id].is_some()
                && self
                    .send_assignment(id, round as u32, RoundMode::Train, &down.frames)
                    .is_ok()
            {
                participants.push(id);
            } else {
                self.conns[id] = None;
                faults.push(id, FaultKind::Dropout);
            }
        }

        if participants.is_empty() {
            faults.no_op = true;
            let per_client_acc = self.evaluate_round(round as u32);
            return self.driver.noop_round(per_client_acc, faults);
        }

        // Collection phase: flip the cohort to non-blocking reads.
        let mut live: Vec<usize> = Vec::new();
        for &id in &participants {
            let ok = self.conns[id]
                .as_ref()
                .is_some_and(|s| s.set_nonblocking(true).is_ok());
            if ok {
                live.push(id);
            } else {
                self.conns[id] = None;
                faults.push(id, FaultKind::Dropout);
            }
        }

        let mut acc = self.driver.begin_accumulation();
        // (client id, fault) pairs in completion order; stable-sorted by
        // id below so the ledger is arrival-order-independent.
        let mut events: Vec<(usize, FaultKind)> = Vec::new();
        let mut metas: Vec<LocalOutcome> = Vec::new();
        let mut shutdown = false;

        {
            // Field-level borrow split: the sweep mutates `conns` while
            // the decode workers share the driver's read-only session
            // data (config, layout, parameter count).
            let driver = &self.driver;
            let conns = &mut self.conns;
            let listener = &self.listener;
            let fingerprint = self.fingerprint;
            let cfg = driver.cfg;
            let layout = driver.layout.as_ref();
            let p = driver.global.shared.len();
            let deadline = phase_started + self.opts.round_timeout;
            let max_frame = self.opts.max_frame;
            let io_timeout = self.opts.io_timeout;
            // Quorum commit target: once this many uploads have folded
            // the round ends, whoever is missing ledgered as a dropout.
            // At the default quorum of 1.0 the target equals the full
            // participant count, which is unreachable early — behaviour
            // (and bit-level determinism) is then identical to waiting
            // for everyone.
            let quorum_target = (self.opts.quorum * participants.len() as f64).ceil() as usize;
            let workers = rayon::current_num_threads().max(1);
            // Uploads buffered outside the kernel at once: admitted
            // assemblies plus queued / in-flight decode jobs. This is the
            // round's memory ceiling — O(workers), not O(cohort).
            let window = 4 * workers + 16;

            type DecodeJob = (usize, LocalOutcome, Vec<Vec<u8>>);
            type DecodeDone = (usize, LocalOutcome, Result<LocalOutcome, String>);

            std::thread::scope(|scope| {
                // Bounded job queue: a full queue blocks the sweep, which
                // is exactly the backpressure that keeps memory flat.
                let (job_tx, job_rx) = mpsc::sync_channel::<DecodeJob>(workers);
                let job_rx = Arc::new(Mutex::new(job_rx));
                let (done_tx, done_rx) = mpsc::channel::<DecodeDone>();
                for _ in 0..workers {
                    let job_rx = Arc::clone(&job_rx);
                    let done_tx = done_tx.clone();
                    scope.spawn(move || loop {
                        let job = job_rx.lock().expect("decode queue lock poisoned").recv();
                        let Ok((id, meta, frames)) = job else { break };
                        let decoded = decode_upload(&cfg, &meta, &frames, layout, p)
                            .map_err(|e| e.to_string());
                        if done_tx.send((id, meta, decoded)).is_err() {
                            break;
                        }
                    });
                }
                drop(done_tx);

                let mut gathers: Vec<ConnGather> =
                    live.iter().map(|_| ConnGather::new(max_frame)).collect();
                // Connections still being gathered (parallel to `live`).
                let mut open_conns: Vec<bool> = vec![true; live.len()];
                // Upload copies still expected from each slot: one, plus
                // one more when the chaos plan schedules a duplicated
                // retransmit this round. The slot stays open until every
                // scheduled copy arrived, so the duplicate ledger entries
                // are deterministic rather than racing the round cut.
                let mut copies: Vec<usize> = live
                    .iter()
                    .map(|&id| {
                        1 + chaos
                            .as_ref()
                            .map_or(0, |c| usize::from(c.duplicates_upload(round, id)))
                    })
                    .collect();
                // One full upload already handed to decode: any further
                // completed copy is a retransmit and is discarded by the
                // per-(round, client) idempotence guard.
                let mut submitted: Vec<bool> = vec![false; live.len()];
                // A fault event was recorded for this slot; it must not
                // reopen on reconnect (the ledger is already written).
                let mut faulted: Vec<bool> = vec![false; live.len()];
                let mut gathering = live.len();
                // Decode jobs whose results have not been drained yet.
                let mut outstanding = 0usize;
                // Admission slots held: assembling conns + outstanding.
                let mut in_flight = 0usize;
                // Uploads folded into the accumulator so far — the count
                // the quorum commit is measured against.
                let mut folded = 0usize;

                while gathering > 0 || outstanding > 0 {
                    let mut progressed = false;

                    // Register mid-round reconnects (chaos resets, real
                    // connection flaps). A reconnect only reopens a slot
                    // with no ledger entry yet; the round assignment is
                    // resent so the client retries its upload in-round.
                    for id in accept_reconnects(
                        listener,
                        fingerprint,
                        round as u32,
                        io_timeout,
                        max_frame,
                        conns,
                    ) {
                        let Some(k) = live.iter().position(|&l| l == id) else {
                            continue;
                        };
                        if faulted[k] {
                            continue;
                        }
                        progressed = true;
                        if open_conns[k] {
                            // Replacing a half-gathered stream: return the
                            // admission slot and restart assembly.
                            if gathers[k].assembling() {
                                in_flight -= 1;
                            }
                        } else {
                            open_conns[k] = true;
                            gathering += 1;
                        }
                        gathers[k] = ConnGather::new(max_frame);
                        // The client re-runs its chaos schedule on retry,
                        // so the expected copy count resets with it.
                        copies[k] = 1 + chaos
                            .as_ref()
                            .map_or(0, |c| usize::from(c.duplicates_upload(round, id)));
                        let resent = (|| -> Result<(), NetError> {
                            let stream = conns[id].as_mut().expect("just registered");
                            let assign = RoundAssign {
                                round: round as u32,
                                mode: RoundMode::Train,
                                n_frames: down.frames.len() as u32,
                            };
                            write_frame(stream, &seal(MsgType::RoundAssign, &assign.encode()))?;
                            for f in &down.frames {
                                write_frame(stream, f)?;
                            }
                            stream.set_nonblocking(true)?;
                            Ok(())
                        })();
                        if resent.is_err() {
                            conns[id] = None;
                        }
                    }

                    // Drain finished decodes first: each frees a slot and
                    // feeds the accumulator.
                    while let Ok((id, meta, decoded)) = done_rx.try_recv() {
                        progressed = true;
                        outstanding -= 1;
                        in_flight -= 1;
                        match decoded {
                            Ok(d) => {
                                acc.fold(d);
                                folded += 1;
                            }
                            // TCP retransmits damaged segments itself, so
                            // there is no retry protocol on this path: a
                            // reply that fails the CRC/codec checks is
                            // corrupt, full stop (`RetriesExhausted`
                            // belongs to the simulator's retry loop).
                            Err(error) => {
                                events.push((id, FaultKind::CorruptUpload { error }));
                            }
                        }
                        metas.push(meta);
                    }

                    // Quorum commit: enough of the cohort folded — cut the
                    // stragglers and ledger the shortfall as dropouts. A
                    // slot that already submitted stays open: it is only
                    // draining a scheduled duplicate copy whose bytes are
                    // in flight, and severing it would desync the client
                    // for the evaluation pass (the copy's ledger entry
                    // closes the slot moments later).
                    if gathering > 0 && folded >= quorum_target {
                        for (k, &id) in live.iter().enumerate() {
                            if open_conns[k] && !submitted[k] {
                                open_conns[k] = false;
                                gathering -= 1;
                                if gathers[k].assembling() {
                                    in_flight -= 1;
                                }
                                events.push((id, FaultKind::Dropout));
                                faulted[k] = true;
                                conns[id] = None;
                                progressed = true;
                            }
                        }
                    }

                    // Readiness sweep over the still-gathering cohort.
                    for (k, &id) in live.iter().enumerate() {
                        if !open_conns[k] {
                            continue;
                        }
                        if gathers[k].parked() && in_flight < window {
                            gathers[k].admit();
                            in_flight += 1;
                            progressed = true;
                        }
                        let Some(stream) = conns[id].as_mut() else {
                            if chaos.is_some() {
                                // Chaos runs expect resets: hold the slot
                                // open for a mid-round reconnect (bounded
                                // by the deadline and the quorum cut).
                                continue;
                            }
                            open_conns[k] = false;
                            gathering -= 1;
                            faulted[k] = true;
                            events.push((id, FaultKind::Dropout));
                            continue;
                        };
                        match gathers[k].poll(stream, round as u32, id) {
                            GatherPoll::Idle => {}
                            GatherPoll::Progress => progressed = true,
                            GatherPoll::Upload(mut meta, frames) => {
                                progressed = true;
                                if submitted[k] {
                                    // A retransmitted copy of an upload
                                    // already folded this round: discard
                                    // it, ledger the retransmit, and stop
                                    // gathering this slot — every further
                                    // copy would also be a retransmit.
                                    in_flight -= 1;
                                    open_conns[k] = false;
                                    gathering -= 1;
                                    faulted[k] = true;
                                    events.push((id, FaultKind::DuplicateUpload));
                                    continue;
                                }
                                submitted[k] = true;
                                copies[k] -= 1;
                                if copies[k] == 0 {
                                    open_conns[k] = false;
                                    gathering -= 1;
                                }
                                meta.wire.download_payload = down.payload;
                                meta.wire.download_framed = down.framed();
                                if meta.diverged {
                                    events.push((id, FaultKind::LocalDivergence));
                                }
                                // The admission slot transfers from the
                                // assembly to the queued job; it frees
                                // when the result drains above.
                                outstanding += 1;
                                job_tx
                                    .send((id, *meta, frames))
                                    .expect("decode workers outlive the sweep");
                            }
                            GatherPoll::Failed(failure) => {
                                progressed = true;
                                if gathers[k].assembling() {
                                    in_flight -= 1;
                                }
                                if chaos.is_some() && matches!(failure, CollectFailure::Disconnect)
                                {
                                    // Scheduled reset (or a flap a chaos
                                    // run tolerates): drop the stream but
                                    // keep the slot open for the retry.
                                    gathers[k] = ConnGather::new(max_frame);
                                    conns[id] = None;
                                    continue;
                                }
                                open_conns[k] = false;
                                gathering -= 1;
                                let kind = match failure {
                                    CollectFailure::Timeout => FaultKind::DeadlineMissed,
                                    CollectFailure::Disconnect => FaultKind::Dropout,
                                    CollectFailure::Shutdown => {
                                        shutdown = true;
                                        FaultKind::Dropout
                                    }
                                    CollectFailure::Corrupt(error) => {
                                        FaultKind::CorruptUpload { error }
                                    }
                                };
                                events.push((id, kind));
                                faulted[k] = true;
                                conns[id] = None;
                            }
                        }
                    }

                    // One shared deadline for the whole collection phase:
                    // whoever has not completed framing by now missed it.
                    // Slots that already submitted (and are only waiting
                    // on scheduled duplicate copies) close silently.
                    if gathering > 0 && Instant::now() >= deadline {
                        for (k, &id) in live.iter().enumerate() {
                            if open_conns[k] {
                                open_conns[k] = false;
                                if gathers[k].assembling() {
                                    in_flight -= 1;
                                }
                                if !submitted[k] {
                                    events.push((id, FaultKind::DeadlineMissed));
                                }
                                faulted[k] = true;
                                conns[id] = None;
                            }
                        }
                        gathering = 0;
                        progressed = true;
                    }

                    if !progressed && (gathering > 0 || outstanding > 0) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }

                // Lets the workers' `recv` fail so the scope can join.
                drop(job_tx);
            });
        }

        // Collection is over: back to blocking mode for the evaluation
        // pass and the next round's broadcast.
        for &id in &live {
            if let Some(s) = self.conns[id].as_ref() {
                if s.set_nonblocking(false).is_err() {
                    self.conns[id] = None;
                }
            }
        }
        if shutdown {
            self.shutdown_requested = true;
        }
        let measured_s = phase_started.elapsed().as_secs_f64();

        // Re-establish the deterministic ascending-id order the ledger
        // and the f32 bookkeeping folds rely on. The sort is stable, so
        // a client's own events keep their causal order (divergence
        // before corrupt-decode).
        events.sort_by_key(|(id, _)| *id);
        for (id, kind) in events {
            faults.push(id, kind);
        }
        metas.sort_by_key(|o| o.client_id);

        let mut wire_total = WireBytes::default();
        let mut wall_clock_s = 0f64;
        let mut device_seconds = 0f64;
        for o in &metas {
            wire_total.accumulate(&o.wire);
            let t = self.driver.net.client_time(
                o.wire.download_framed as usize,
                o.wire.upload_framed as usize,
            );
            device_seconds += t;
            wall_clock_s = wall_clock_s.max(t);
        }

        // Close the accumulator — the same screen/aggregate stage the
        // simulator runs, minus any cohort buffering for the streaming
        // configurations.
        self.driver.finish_accumulation(acc, &mut faults);
        let per_client_acc = self.evaluate_round(round as u32);
        self.driver.finish_round(
            &metas,
            TransportStats {
                wire: wire_total,
                transfer_wall_s: wall_clock_s,
                transfer_device_s: device_seconds,
                measured_wall_s: measured_s,
            },
            per_client_acc,
            faults,
        )
    }

    /// The tiered round body: every connection is one edge aggregator
    /// which screens its slice of the cohort locally and forwards one
    /// combined upload (DESIGN.md §11). Composition at the root follows
    /// the aggregator: exactly-composable kinds replay the flat fold over
    /// the survivors' forwarded frames ([`fold_exact`]); robust kinds
    /// compose the edges' pre-reduced summaries ([`aggregate_reduced`]).
    /// The record's `wire` figures measure the *root link* only — the
    /// client↔edge traffic is accounted on the edges (the per-client
    /// analytic bytes still travel in the combined upload's entries, so
    /// Eq. 13 totals stay client-based).
    fn tiered_round(&mut self, round: usize, sampled: Vec<usize>) -> RoundRecord {
        // Root ledger counters start empty: each live edge reports its
        // slice's counters (sampled included) in the combined upload and
        // they are folded in below; dead edges are accounted here.
        let mut faults = FaultRecord::default();

        let down = self.driver.broadcast();
        let broadcast_started = Instant::now();
        let mut participants: Vec<usize> = Vec::new();
        // Surviving clients of a dead edge that re-registered directly at
        // the root: they train this round over the root link instead.
        let mut failover: Vec<usize> = Vec::new();
        let exact = exact_composition(&self.driver.cfg.aggregator);
        for e in 0..self.conns.len() {
            let slice: Vec<usize> = sampled
                .iter()
                .copied()
                .filter(|c| self.ranges[e].contains(c))
                .collect();
            // Every live edge gets the assignment even when its slice is
            // empty — it derives the cohort itself from the shared
            // sampling stream and replies with an empty combined upload,
            // keeping the round barrier uniform.
            if self.conns[e].is_some()
                && self
                    .send_assignment(e, round as u32, RoundMode::Train, &down.frames)
                    .is_ok()
            {
                participants.push(e);
            } else {
                self.conns[e] = None;
                self.ledger_dead_edge(
                    &slice,
                    round,
                    FaultKind::Dropout,
                    exact,
                    &mut faults,
                    &mut failover,
                );
            }
        }
        let mut measured_s = broadcast_started.elapsed().as_secs_f64();

        if participants.is_empty() {
            faults.no_op = true;
            let per_client_acc = self.evaluate_round(round as u32);
            return self.driver.noop_round(per_client_acc, faults);
        }

        let mut outcomes: Vec<LocalOutcome> = Vec::new();
        let mut survivors: Vec<LocalOutcome> = Vec::new();
        let mut reduced: Vec<EdgeReduced> = Vec::new();
        let mut wire_total = WireBytes::default();
        let mut wall_clock_s = 0f64;
        let mut device_seconds = 0f64;
        for &e in &participants {
            match self.collect_combined(e, round as u32, RoundMode::Train) {
                Ok((combined, upload_framed, read_s)) => {
                    measured_s += read_s;
                    fold_fault_counters(&mut faults, &combined.faults);
                    // Root-link wire accounting: one broadcast down, one
                    // combined frame up, per edge.
                    let link = WireBytes {
                        download_payload: down.payload,
                        download_framed: down.framed(),
                        upload_payload: upload_framed.saturating_sub(HEADER_LEN as u64),
                        upload_framed,
                    };
                    wire_total.accumulate(&link);
                    let t = self
                        .driver
                        .net
                        .client_time(link.download_framed as usize, link.upload_framed as usize);
                    device_seconds += t;
                    wall_clock_s = wall_clock_s.max(t);
                    for entry in &combined.entries {
                        let meta = entry_outcome(entry);
                        if !entry.frames.is_empty() {
                            // Exact composition: the survivor's original
                            // sealed frames, replayed through the same
                            // decode path a flat coordinator uses.
                            match self.driver.decode_client_upload(&meta, &entry.frames) {
                                Ok(d) => survivors.push(d),
                                // No retry protocol over TCP: corrupt is
                                // corrupt (see the flat path).
                                Err(err) => faults.push(
                                    meta.client_id,
                                    FaultKind::CorruptUpload {
                                        error: err.to_string(),
                                    },
                                ),
                            }
                        }
                        outcomes.push(meta);
                    }
                    if let Some(r) = combined.reduced {
                        reduced.push(r);
                    }
                }
                Err(failure) => {
                    // The whole edge is gone: every sampled client behind
                    // it misses the round — unless it holds a direct
                    // failover connection at the root.
                    let kind = match failure {
                        CollectFailure::Timeout => FaultKind::DeadlineMissed,
                        CollectFailure::Shutdown => {
                            self.shutdown_requested = true;
                            FaultKind::Dropout
                        }
                        _ => FaultKind::Dropout,
                    };
                    let slice: Vec<usize> = sampled
                        .iter()
                        .copied()
                        .filter(|c| self.ranges[e].contains(c))
                        .collect();
                    self.conns[e] = None;
                    self.ledger_dead_edge(&slice, round, kind, exact, &mut faults, &mut failover);
                }
            }
        }

        // Failover lane: a dead edge's surviving clients train over the
        // root link this round, replayed through the same decode path a
        // flat coordinator uses. Only exactly-composable aggregators take
        // the lane — a robust kind has no edge to pre-reduce under, so
        // its orphaned clients were ledgered as dropouts above
        // (DESIGN.md §14).
        failover.sort_unstable();
        for &c in &failover {
            if !self.send_direct_assignment(c, round as u32, RoundMode::Train, &down.frames) {
                self.direct[c] = None;
                faults.push(c, FaultKind::Dropout);
            }
        }
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        for &c in &failover {
            let Some(stream) = self.direct[c].as_mut() else {
                continue;
            };
            let collect_started = Instant::now();
            match collect_direct_upload(stream, round as u32, c, max_frame, round_timeout) {
                Ok((mut meta, frames)) => {
                    measured_s += collect_started.elapsed().as_secs_f64();
                    meta.wire.download_payload = down.payload;
                    meta.wire.download_framed = down.framed();
                    wire_total.accumulate(&meta.wire);
                    let t = self.driver.net.client_time(
                        meta.wire.download_framed as usize,
                        meta.wire.upload_framed as usize,
                    );
                    device_seconds += t;
                    wall_clock_s = wall_clock_s.max(t);
                    if meta.diverged {
                        faults.push(c, FaultKind::LocalDivergence);
                    }
                    match self.driver.decode_client_upload(&meta, &frames) {
                        Ok(d) => survivors.push(d),
                        Err(err) => faults.push(
                            c,
                            FaultKind::CorruptUpload {
                                error: err.to_string(),
                            },
                        ),
                    }
                    outcomes.push(meta);
                }
                Err(failure) => {
                    let kind = match failure {
                        CollectFailure::Timeout => FaultKind::DeadlineMissed,
                        CollectFailure::Shutdown => {
                            self.shutdown_requested = true;
                            FaultKind::Dropout
                        }
                        CollectFailure::Corrupt(error) => FaultKind::CorruptUpload { error },
                        CollectFailure::Disconnect => FaultKind::Dropout,
                    };
                    faults.push(c, kind);
                    self.direct[c] = None;
                }
            }
        }

        // Compose: the edges already screened their cohorts, so the
        // policy must not run again at the root.
        if exact_composition(&self.driver.cfg.aggregator) {
            fold_exact(&mut self.driver, survivors, &mut faults);
        } else {
            let driver = &mut self.driver;
            faults.survivors = reduced.iter().map(|r| r.survivors as usize).sum();
            let applied = aggregate_reduced(
                &mut driver.global,
                &driver.cfg,
                &reduced,
                driver.cfg.n_clients,
            );
            faults.no_op = !applied;
        }
        // Failover outcomes appended after the edges' — restore the
        // ascending-id order the bookkeeping folds rely on.
        outcomes.sort_by_key(|o| o.client_id);
        let per_client_acc = self.evaluate_round(round as u32);
        self.driver.finish_round(
            &outcomes,
            TransportStats {
                wire: wire_total,
                transfer_wall_s: wall_clock_s,
                transfer_device_s: device_seconds,
                measured_wall_s: measured_s,
            },
            per_client_acc,
            faults,
        )
    }

    /// Read one edge's [`RoundDone`] header plus its single
    /// [`EdgeCombined`] frame; returns the decoded combined upload, the
    /// framed size of the upload (root-link accounting) and the transfer
    /// seconds after the header arrived.
    fn collect_combined(
        &mut self,
        e: usize,
        round: u32,
        mode: RoundMode,
    ) -> Result<(EdgeCombined, u64, f64), CollectFailure> {
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        let stream = match self.conns[e].as_mut() {
            Some(s) => s,
            None => return Err(CollectFailure::Disconnect),
        };
        if stream.set_read_timeout(Some(round_timeout)).is_err() {
            return Err(CollectFailure::Disconnect);
        }
        let header = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let (msg, payload) = match open(&header) {
            Ok(x) => x,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        match msg {
            MsgType::Shutdown => return Err(CollectFailure::Shutdown),
            MsgType::RoundDone => {}
            _ => return Err(CollectFailure::Disconnect),
        }
        let done = match RoundDone::decode(payload) {
            Ok(d) => d,
            Err(e) => return Err(CollectFailure::Corrupt(e.to_string())),
        };
        if done.round != round || done.client_id as usize != e || done.mode != mode {
            return Err(CollectFailure::Disconnect);
        }
        let started = Instant::now();
        let frame = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let read_s = started.elapsed().as_secs_f64();
        let combined = match open(&frame) {
            Ok((MsgType::EdgeCombined, payload)) => match decode_edge_combined(payload) {
                Ok(c) => c,
                Err(e) => return Err(CollectFailure::Corrupt(e.to_string())),
            },
            Ok((other, _)) => {
                return Err(CollectFailure::Corrupt(format!(
                    "expected EdgeCombined, got {other:?}"
                )))
            }
            Err(e) => return Err(CollectFailure::Corrupt(e.to_string())),
        };
        if combined.edge_id as usize != e || combined.round != round {
            return Err(CollectFailure::Corrupt(format!(
                "combined upload labelled edge {} round {}, expected edge {e} round {round}",
                combined.edge_id, combined.round
            )));
        }
        Ok((combined, frame.len() as u64, read_s))
    }

    /// Evaluation pass: every live client syncs the (post-aggregation)
    /// global state and reports validation accuracy. The networked
    /// analogue of the simulator's in-process `evaluate_all`; clients
    /// without a live connection contribute 0.0. Excluded from wire
    /// accounting, like the simulator's evaluation. When tiered, each
    /// edge fans the pass out to its clients and the combined reply's
    /// entries carry one accuracy per client.
    fn evaluate_round(&mut self, round: u32) -> Vec<f32> {
        let down = self.driver.broadcast();
        let n_conns = self.conns.len();
        let mut pending: Vec<usize> = Vec::new();
        for id in 0..n_conns {
            if self.conns[id].is_none() {
                continue;
            }
            if self
                .send_assignment(id, round, RoundMode::Eval, &down.frames)
                .is_ok()
            {
                pending.push(id);
            } else {
                self.conns[id] = None;
            }
        }
        let mut acc = vec![0.0f32; self.driver.cfg.n_clients];
        let tiered = matches!(self.opts.topology, Topology::Tiered { .. });
        for id in pending {
            if tiered {
                match self.collect_combined(id, round, RoundMode::Eval) {
                    Ok((combined, _, _)) => {
                        for entry in &combined.entries {
                            if let Some(slot) = acc.get_mut(entry.client_id as usize) {
                                *slot = entry.accuracy;
                            }
                        }
                    }
                    Err(CollectFailure::Shutdown) => {
                        self.shutdown_requested = true;
                        self.conns[id] = None;
                    }
                    Err(_) => {
                        self.conns[id] = None;
                    }
                }
            } else {
                match self.collect_eval(id, round) {
                    Ok(a) => acc[id] = a,
                    Err(CollectFailure::Shutdown) => {
                        self.shutdown_requested = true;
                        self.conns[id] = None;
                    }
                    Err(_) => {
                        self.conns[id] = None;
                    }
                }
            }
        }
        // Direct failover clients take the evaluation pass on the root
        // link; a client with no live connection contributes 0.0, same
        // as the edge path.
        let round_timeout = self.opts.round_timeout;
        let max_frame = self.opts.max_frame;
        let direct_ids: Vec<usize> = (0..self.direct.len())
            .filter(|&c| self.direct[c].is_some())
            .collect();
        for c in direct_ids {
            if !self.send_direct_assignment(c, round, RoundMode::Eval, &down.frames) {
                self.direct[c] = None;
                continue;
            }
            let Some(stream) = self.direct[c].as_mut() else {
                continue;
            };
            let res = if stream.set_read_timeout(Some(round_timeout)).is_ok() {
                read_round_done(stream, max_frame)
            } else {
                Err(CollectFailure::Disconnect)
            };
            match res {
                Ok(done)
                    if done.round == round
                        && done.client_id as usize == c
                        && done.mode == RoundMode::Eval =>
                {
                    acc[c] = done.accuracy;
                }
                Err(CollectFailure::Shutdown) => {
                    self.shutdown_requested = true;
                    self.direct[c] = None;
                }
                _ => {
                    self.direct[c] = None;
                }
            }
        }
        acc
    }

    /// Read one client's evaluation report.
    fn collect_eval(&mut self, id: usize, round: u32) -> Result<f32, CollectFailure> {
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        let stream = match self.conns[id].as_mut() {
            Some(s) => s,
            None => return Err(CollectFailure::Disconnect),
        };
        if stream.set_read_timeout(Some(round_timeout)).is_err() {
            return Err(CollectFailure::Disconnect);
        }
        let frame = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let (msg, payload) = match open(&frame) {
            Ok(x) => x,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        match msg {
            MsgType::Shutdown => return Err(CollectFailure::Shutdown),
            MsgType::RoundDone => {}
            _ => return Err(CollectFailure::Disconnect),
        }
        let done = match RoundDone::decode(payload) {
            Ok(d) => d,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        if done.round != round || done.client_id as usize != id || done.mode != RoundMode::Eval {
            return Err(CollectFailure::Disconnect);
        }
        Ok(done.accuracy)
    }

    /// End the session: checkpoint the global state (when configured) and
    /// broadcast [`MsgType::Shutdown`] so every node exits cleanly.
    pub fn finish(&mut self) -> Result<(), NetError> {
        if let Some(path) = self.opts.checkpoint.clone() {
            save_global(&self.driver.global, &path)?;
        }
        let bye = seal(MsgType::Shutdown, &[]);
        for conn in self.conns.iter_mut().chain(self.direct.iter_mut()) {
            if let Some(stream) = conn.as_mut() {
                let _ = write_frame(stream, &bye);
            }
            *conn = None;
        }
        Ok(())
    }

    /// Run the full session: wait for the cohort, drive every configured
    /// round (stopping early if a client requests shutdown), then
    /// checkpoint and broadcast [`MsgType::Shutdown`]. Returns `true` when
    /// all rounds ran, `false` on an early client-requested shutdown — the
    /// checkpoint then holds the state to resume from (see
    /// [`RoundDriver::advance_sampling`]).
    pub fn run(&mut self) -> Result<bool, NetError> {
        self.wait_for_clients();
        while self.driver.round_index() < self.driver.cfg.rounds && !self.shutdown_requested {
            self.run_round();
        }
        let completed = !self.shutdown_requested;
        self.finish()?;
        Ok(completed)
    }
}

/// Perform the socket setup and read one sealed [`Hello`] off a freshly
/// accepted connection (blocking, under the io deadline).
fn read_hello(
    stream: &mut TcpStream,
    io_timeout: Duration,
    max_frame: usize,
) -> Result<Hello, NetError> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let frame = read_frame(stream, max_frame)?
        .ok_or_else(|| NetError::Protocol("connection closed before Hello".into()))?;
    let (msg, payload) = open(&frame)?;
    if msg != MsgType::Hello {
        return Err(NetError::Protocol(format!("expected Hello, got {msg:?}")));
    }
    Ok(Hello::decode(payload)?)
}

/// Accept every connection pending on the listener *mid-round* and
/// register flat-topology client reconnects into `conns`. The flat
/// collection sweep split-borrows the coordinator, so this is a free
/// function rather than a method. Returns the client ids registered.
fn accept_reconnects(
    listener: &TcpListener,
    fingerprint: u64,
    round: u32,
    io_timeout: Duration,
    max_frame: usize,
    conns: &mut [Option<TcpStream>],
) -> Vec<usize> {
    let mut joined = Vec::new();
    loop {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => break,
        };
        let Ok(hello) = read_hello(&mut stream, io_timeout, max_frame) else {
            continue;
        };
        let id = hello.client_id as usize;
        let accepted =
            hello.role == HelloRole::Client && id < conns.len() && hello.fingerprint == fingerprint;
        let verdict = Join { accepted, round };
        if write_frame(&mut stream, &seal(MsgType::Join, &verdict.encode())).is_err() {
            continue;
        }
        if accepted {
            conns[id] = Some(stream);
            joined.push(id);
        }
    }
    joined
}

/// Blocking-collect one direct client's Train upload on the root link —
/// the failover lane of a tiered round (the client's home edge is dead).
/// Validation mirrors the flat gather's; returns the outcome bookkeeping
/// and the client's sealed upload frames.
fn collect_direct_upload(
    stream: &mut TcpStream,
    round: u32,
    id: usize,
    max_frame: usize,
    timeout: Duration,
) -> Result<(LocalOutcome, Vec<Vec<u8>>), CollectFailure> {
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return Err(CollectFailure::Disconnect);
    }
    let done = read_round_done(stream, max_frame)?;
    if done.round != round || done.client_id as usize != id || done.mode != RoundMode::Train {
        return Err(CollectFailure::Disconnect);
    }
    let mut frames = Vec::with_capacity(done.n_frames as usize);
    for _ in 0..done.n_frames {
        match read_frame(stream, max_frame) {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Coordinator::classify(&e)),
        }
    }
    Ok((meta_outcome(&done), frames))
}

/// Read and decode one blocking [`RoundDone`] header off a stream.
fn read_round_done(stream: &mut TcpStream, max_frame: usize) -> Result<RoundDone, CollectFailure> {
    let frame = match read_frame(stream, max_frame) {
        Ok(Some(f)) => f,
        Ok(None) => return Err(CollectFailure::Disconnect),
        Err(e) => return Err(Coordinator::classify(&e)),
    };
    let (msg, payload) = match open(&frame) {
        Ok(x) => x,
        Err(_) => return Err(CollectFailure::Disconnect),
    };
    match msg {
        MsgType::Shutdown => return Err(CollectFailure::Shutdown),
        MsgType::RoundDone => {}
        _ => return Err(CollectFailure::Disconnect),
    }
    RoundDone::decode(payload).map_err(|e| CollectFailure::Corrupt(e.to_string()))
}
