//! The middle tier of the hierarchical runtime: an edge aggregator that
//! terminates one slice of the client population and forwards a single
//! combined upload to the root coordinator (DESIGN.md §11).
//!
//! An edge speaks the wire protocol both ways. **Downstream** it is a
//! coordinator: it binds a listener, registers the clients whose ids fall
//! in its [`edge_partition`] slice, broadcasts the root's download frames
//! verbatim and collects uploads behind the usual per-connection
//! deadlines. **Upstream** it is a node: it connects to the root with
//! capped exponential backoff, registers with its *edge id* as the wire
//! client id, and answers round assignments — not with its own training,
//! but with the [`EdgeCombined`] frame that carries its cohort's round.
//!
//! The edge runs the session's [`ScreenPolicy`](spatl_fl::ScreenPolicy)
//! locally over its decoded slice, so screening happens exactly once per
//! upload (the root never re-screens a tiered round). How the surviving
//! updates travel upstream depends on the aggregator
//! ([`exact_composition`]): exactly-composable kinds forward the
//! survivors' original sealed frames verbatim, robust kinds pre-reduce
//! the slice with [`reduce_cohort`] and ship one summary vector.
//!
//! Determinism: the edge replays the session's seeded sampling stream
//! (same seed, same `choose_k` draws) to derive each round's cohort
//! itself, so the root never has to serialise cohort membership — and a
//! root that replays a round after a write-ahead-log recovery gets the
//! same cohort again from the edge's cache.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::time::Duration;

use spatl_fl::{
    churn_departures, decode_download, edge_partition, exact_composition, fault_counters,
    outcome_entry, reduce_cohort, screen_updates, ChaosInjector, FaultKind, FaultRecord,
    LocalOutcome, RoundBytes, RoundDriver, WireBytes,
};
use spatl_wire::{
    open, read_frame, seal, seal_edge_combined, write_frame, EdgeCombined, EdgeEntry, MsgType,
    StreamError, TierFaultCounters, MAX_FRAME_PAYLOAD,
};

use crate::proto::{
    session_fingerprint, Hello, HelloRole, Join, RoundAssign, RoundDone, RoundMode,
};
use crate::NetError;

/// Tunables of an [`EdgeAggregator`].
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// This edge's id (0-based, `< n_edges`); also its wire client id on
    /// the root link.
    pub edge_id: usize,
    /// Total number of edges the root was started with — both ends must
    /// agree for the [`edge_partition`] slices to line up.
    pub n_edges: usize,
    /// Root coordinator address to connect upstream to.
    pub root_addr: String,
    /// Address to listen on for this edge's clients; port 0 picks a free
    /// port (see [`EdgeAggregator::local_addr`]).
    pub listen_addr: String,
    /// How long the edge waits for its full client slice to register
    /// before its first train round starts with whoever showed up. The
    /// edge registers upstream immediately at startup, so this is what
    /// keeps a root's first assignment from racing the clients' joins.
    pub join_timeout: Duration,
    /// Per-client read deadline while collecting an upload (covers the
    /// client's local training).
    pub round_timeout: Duration,
    /// Per-client write deadline and handshake read deadline.
    pub io_timeout: Duration,
    /// Upper bound on a single frame's payload, both directions.
    pub max_frame: usize,
    /// First upstream reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the upstream reconnect delay.
    pub backoff_cap: Duration,
    /// Consecutive upstream connection failures tolerated before giving
    /// up; resets whenever a session is established.
    pub max_reconnects: u32,
}

impl EdgeConfig {
    /// Defaults for edge `edge_id` of `n_edges`, rooted at `root_addr`,
    /// listening on `listen_addr`: 300 s round deadline, 30 s io
    /// deadline, 50 ms base backoff capped at 2 s, 40 reconnects.
    pub fn new(
        edge_id: usize,
        n_edges: usize,
        root_addr: impl Into<String>,
        listen_addr: impl Into<String>,
    ) -> Self {
        EdgeConfig {
            edge_id,
            n_edges,
            root_addr: root_addr.into(),
            listen_addr: listen_addr.into(),
            join_timeout: Duration::from_secs(20),
            round_timeout: Duration::from_secs(300),
            io_timeout: Duration::from_secs(30),
            max_frame: MAX_FRAME_PAYLOAD,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_reconnects: 40,
        }
    }
}

/// What an edge did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeReport {
    /// Train rounds forwarded upstream (replayed rounds included).
    pub rounds_forwarded: usize,
    /// Evaluation passes forwarded upstream.
    pub rounds_evaluated: usize,
    /// Upstream sessions re-established after a lost connection.
    pub reconnects: usize,
}

/// How an upstream session ended.
enum SessionEnd {
    /// The root broadcast [`MsgType::Shutdown`]: clean exit.
    Shutdown,
    /// The root link broke; the edge should reconnect.
    Lost,
    /// The chaos plan killed this edge process mid-round: every socket
    /// (root link and client connections alike) is dropped without a
    /// goodbye and the edge does **not** reconnect — the root must
    /// discover the dead partition from the broken stream alone.
    Killed,
}

/// Why collecting one client's reply failed (edge-side mirror of the
/// coordinator's classification).
enum CollectFailure {
    /// No complete reply before the round deadline.
    Timeout,
    /// The connection is gone or stopped making protocol sense.
    Disconnect,
    /// The client sent a `Shutdown` frame instead of a reply.
    Shutdown,
    /// The reply arrived but its payload failed the decode path.
    Corrupt(String),
}

/// One client upload the edge collected, before decoding.
struct Collected {
    meta: LocalOutcome,
    frames: Vec<Vec<u8>>,
}

/// One edge aggregator: a client-facing listener plus the upstream
/// connect/serve loop, around the shared [`RoundDriver`] (used here for
/// its configuration, selection layout, parameter count and sampling
/// stream — the edge holds no model of its own).
pub struct EdgeAggregator {
    driver: RoundDriver,
    opts: EdgeConfig,
    /// Global client ids this edge serves.
    range: Range<usize>,
    listener: TcpListener,
    /// Client connections, indexed by `global_id - range.start`.
    conns: Vec<Option<TcpStream>>,
    fingerprint: u64,
    /// Chaos schedule shared by every endpoint of the run (None outside
    /// chaos experiments); the edge consults it for its own kill round.
    chaos: Option<ChaosInjector>,
    /// Cohort cache, indexed by absolute round: derived lazily from the
    /// sampling stream, so a replayed round reuses its original draw.
    cohorts: Vec<Vec<usize>>,
    /// Whether the one-time client join wait already ran (first train
    /// round of the process).
    waited: bool,
    /// Whether an upstream session was ever established (so the next
    /// successful registration counts as a reconnect).
    registered: bool,
    report: EdgeReport,
}

impl EdgeAggregator {
    /// Bind the client-facing listener and wrap the driver. The driver
    /// must come from the same session factory (same flags/seed) as the
    /// root's — the upstream handshake fingerprint enforces this.
    pub fn bind(driver: RoundDriver, opts: EdgeConfig) -> Result<Self, NetError> {
        assert!(
            opts.edge_id < opts.n_edges,
            "edge id {} out of range for {} edges",
            opts.edge_id,
            opts.n_edges
        );
        let listener = TcpListener::bind(&opts.listen_addr)?;
        listener.set_nonblocking(true)?;
        let fingerprint = session_fingerprint(&driver.cfg);
        let range = edge_partition(driver.cfg.n_clients, opts.n_edges)
            .into_iter()
            .nth(opts.edge_id)
            .expect("edge id checked against n_edges");
        Ok(EdgeAggregator {
            conns: (0..range.len()).map(|_| None).collect(),
            chaos: driver.cfg.chaos.map(ChaosInjector::new),
            driver,
            range,
            listener,
            fingerprint,
            cohorts: Vec::new(),
            waited: false,
            registered: false,
            report: EdgeReport::default(),
            opts,
        })
    }

    /// The address the client-facing listener actually bound (resolves
    /// port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Global client ids this edge serves.
    pub fn client_range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Number of currently registered client connections.
    pub fn connected(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Serve until the root shuts the session down: connect upstream
    /// (with capped exponential backoff), answer assignments, reconnect
    /// on loss. Returns the lifetime report.
    pub fn run(mut self) -> Result<EdgeReport, NetError> {
        let mut failures = 0u32;
        loop {
            match TcpStream::connect(&self.opts.root_addr) {
                Ok(stream) => match self.session(stream) {
                    Ok(SessionEnd::Shutdown) => {
                        self.shutdown_clients();
                        return Ok(self.report);
                    }
                    Ok(SessionEnd::Killed) => {
                        // Abrupt process death: no client goodbyes, no
                        // reconnect. The sockets dropped inside
                        // `session`; surviving clients fail over to the
                        // root on their own.
                        return Ok(self.report);
                    }
                    Ok(SessionEnd::Lost) => {
                        failures = 0;
                    }
                    Err(NetError::Rejected) => return Err(NetError::Rejected),
                    Err(_) => failures += 1,
                },
                Err(_) => failures += 1,
            }
            if failures > self.opts.max_reconnects {
                return Err(NetError::Disconnected);
            }
            let exp = failures.max(1).saturating_sub(1).min(16);
            std::thread::sleep(
                self.opts
                    .backoff_base
                    .saturating_mul(1u32 << exp)
                    .min(self.opts.backoff_cap),
            );
        }
    }

    /// One upstream connection's lifetime: handshake as edge
    /// `opts.edge_id`, then serve assignments until shutdown or
    /// disconnect.
    fn session(&mut self, mut stream: TcpStream) -> Result<SessionEnd, NetError> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.opts.io_timeout))?;
        // Bounded handshake: a root that accepted the dial but never
        // answers Join must not park the edge forever. Cleared once
        // registered — mid-session gaps are legitimately unbounded.
        stream.set_read_timeout(Some(self.opts.io_timeout))?;
        let hello = Hello {
            client_id: self.opts.edge_id as u32,
            fingerprint: self.fingerprint,
            role: HelloRole::Edge,
        };
        write_frame(&mut stream, &seal(MsgType::Hello, &hello.encode()))?;
        let frame = read_frame(&mut stream, self.opts.max_frame)?
            .ok_or_else(|| NetError::Protocol("root closed before Join".into()))?;
        let (msg, payload) = open(&frame)?;
        if msg != MsgType::Join {
            return Err(NetError::Protocol(format!("expected Join, got {msg:?}")));
        }
        if !Join::decode(payload)?.accepted {
            return Err(NetError::Rejected);
        }
        stream.set_read_timeout(None)?;
        if self.registered {
            self.report.reconnects += 1;
        }
        self.registered = true;

        loop {
            let frame = match read_frame(&mut stream, self.opts.max_frame) {
                Ok(Some(f)) => f,
                Ok(None) => return Ok(SessionEnd::Lost),
                Err(e) => {
                    if e.is_transport_corruption() {
                        return Ok(SessionEnd::Lost);
                    }
                    return Err(e.into());
                }
            };
            let (msg, payload) = open(&frame)?;
            match msg {
                MsgType::Shutdown => return Ok(SessionEnd::Shutdown),
                MsgType::RoundAssign => {
                    let assign = RoundAssign::decode(payload)?;
                    if self
                        .chaos
                        .as_ref()
                        .is_some_and(|c| c.kills_edge(assign.round as usize, self.opts.edge_id))
                    {
                        // Scheduled edge kill: die exactly like a crashed
                        // process would — every socket dropped mid-round,
                        // nothing flushed, no goodbye downstream.
                        drop(stream);
                        for conn in self.conns.iter_mut() {
                            *conn = None;
                        }
                        return Ok(SessionEnd::Killed);
                    }
                    let mut down = Vec::with_capacity(assign.n_frames as usize);
                    for _ in 0..assign.n_frames {
                        match read_frame(&mut stream, self.opts.max_frame) {
                            Ok(Some(f)) => down.push(f),
                            Ok(None) => return Ok(SessionEnd::Lost),
                            Err(e) => return Err(e.into()),
                        }
                    }
                    let combined = match assign.mode {
                        RoundMode::Train => {
                            self.report.rounds_forwarded += 1;
                            self.train_round(assign.round, &down)
                        }
                        RoundMode::Eval => {
                            self.report.rounds_evaluated += 1;
                            self.eval_round(assign.round, &down)
                        }
                    };
                    let frame = seal_edge_combined(&combined);
                    let done = RoundDone {
                        round: assign.round,
                        mode: assign.mode,
                        client_id: self.opts.edge_id as u32,
                        n_samples: 0,
                        tau: 0,
                        diverged: false,
                        keep_ratio: 0.0,
                        flops_ratio: 0.0,
                        accuracy: 0.0,
                        bytes_download: 0,
                        bytes_upload: 0,
                        upload_payload: (frame.len() - spatl_wire::HEADER_LEN) as u64,
                        upload_framed: frame.len() as u64,
                        n_frames: 1,
                    };
                    write_frame(&mut stream, &seal(MsgType::RoundDone, &done.encode()))?;
                    write_frame(&mut stream, &frame)?;
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected control message {other:?}"
                    )))
                }
            }
        }
    }

    /// This edge's slice of round `round`'s cohort, replaying the
    /// session's seeded sampling stream (cached per absolute round so a
    /// replayed assignment reuses the original draw).
    fn cohort_slice(&mut self, round: u32) -> Vec<usize> {
        let round = round as usize;
        while self.cohorts.len() <= round {
            let drawn = self.driver.sample_round();
            self.cohorts.push(drawn);
        }
        self.cohorts[round]
            .iter()
            .copied()
            .filter(|c| self.range.contains(c))
            .collect()
    }

    /// One train round over this edge's slice: broadcast the root's
    /// frames verbatim, collect and decode the slice's uploads, screen
    /// locally, and build the combined upload for the root.
    fn train_round(&mut self, round: u32, down: &[Vec<u8>]) -> EdgeCombined {
        // The edge registered upstream before its clients registered
        // here; block once, like the root's `wait_for_clients`, so the
        // session's first round does not race the clients' joins.
        if !self.waited {
            let deadline = std::time::Instant::now() + self.opts.join_timeout;
            loop {
                self.accept_pending();
                if self.connected() == self.conns.len() || std::time::Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            self.waited = true;
        }
        self.accept_pending();
        let slice = self.cohort_slice(round);
        let mut faults = FaultRecord::for_sample(slice.len());
        // Clients the churn model schedules to leave mid-round never see
        // the broadcast — same filter the simulator and flat root apply.
        let departures = churn_departures(&self.driver.cfg, round as usize, &slice);

        let mut participants: Vec<usize> = Vec::new();
        for &id in &slice {
            if departures.contains(&id) {
                faults.push(id, FaultKind::Dropout);
            } else if self.conn(id).is_some()
                && self.send_assignment(id, round, RoundMode::Train, down)
            {
                participants.push(id);
            } else {
                *self.conn_mut(id) = None;
                faults.push(id, FaultKind::Dropout);
            }
        }

        let mut entries: Vec<EdgeEntry> = Vec::new();
        let mut decoded: Vec<LocalOutcome> = Vec::new();
        let mut collected: Vec<Collected> = Vec::new();
        for &id in &participants {
            match self.collect_upload(id, round) {
                Ok(c) => {
                    if c.meta.diverged {
                        faults.push(id, FaultKind::LocalDivergence);
                    }
                    match self.driver.decode_client_upload(&c.meta, &c.frames) {
                        Ok(mut d) => {
                            // Screening and edge-side reduction read the
                            // dense delta; the stream fold at the root
                            // does not. Densify compressed uploads only
                            // when a cohort statistic will need them.
                            if self.driver.cfg.screen.is_some()
                                || !exact_composition(&self.driver.cfg.aggregator)
                            {
                                d.densify();
                            }
                            decoded.push(d)
                        }
                        // TCP has no retry protocol — a damaged upload is
                        // simply corrupt, never "retries exhausted" (that
                        // counter belongs to the simulator's retry loop).
                        Err(e) => faults.push(
                            id,
                            FaultKind::CorruptUpload {
                                error: e.to_string(),
                            },
                        ),
                    }
                    collected.push(c);
                }
                Err(CollectFailure::Timeout) => {
                    faults.push(id, FaultKind::DeadlineMissed);
                    *self.conn_mut(id) = None;
                }
                Err(CollectFailure::Shutdown) | Err(CollectFailure::Disconnect) => {
                    faults.push(id, FaultKind::Dropout);
                    *self.conn_mut(id) = None;
                }
                Err(CollectFailure::Corrupt(error)) => {
                    faults.push(id, FaultKind::CorruptUpload { error });
                    *self.conn_mut(id) = None;
                }
            }
        }

        // The session's screen policy runs here, over this edge's slice —
        // the root never re-screens, so each upload is judged exactly
        // once. With a policy active the stage-2 medians are slice-local
        // rather than cohort-global (documented in DESIGN.md §11).
        let survivors = match &self.driver.cfg.screen {
            Some(policy) => screen_updates(policy, decoded, &mut faults),
            None => decoded,
        };
        faults.survivors = survivors.len();

        // Exact composition forwards the survivors' original frames
        // verbatim; reduced composition collapses them into one summary.
        let exact = exact_composition(&self.driver.cfg.aggregator);
        let survivor_ids: Vec<usize> = survivors.iter().map(|o| o.client_id).collect();
        for c in &mut collected {
            let frames = if exact && survivor_ids.contains(&c.meta.client_id) {
                std::mem::take(&mut c.frames)
            } else {
                Vec::new()
            };
            entries.push(outcome_entry(&c.meta, 0.0, frames));
        }
        let reduced = if exact || survivors.is_empty() {
            None
        } else {
            // The broadcast global the cohort trained against supplies
            // the control variate and buffer shape for the reduction.
            match decode_download(&self.driver.cfg, down, self.driver.global.shared.len()) {
                Ok(broadcast) => reduce_cohort(&self.driver.cfg, &survivors, &broadcast),
                Err(_) => None,
            }
        };
        if !exact && reduced.is_none() {
            faults.survivors = 0;
        }

        EdgeCombined {
            edge_id: self.opts.edge_id as u32,
            round,
            faults: fault_counters(&faults),
            entries,
            reduced,
        }
    }

    /// One evaluation pass: forward the post-aggregation global to every
    /// connected client in the slice and collect their accuracies into
    /// bookkeeping-only entries.
    fn eval_round(&mut self, round: u32, down: &[Vec<u8>]) -> EdgeCombined {
        self.accept_pending();
        let ids: Vec<usize> = self.range.clone().collect();
        let mut pending: Vec<usize> = Vec::new();
        for &id in &ids {
            if self.conn(id).is_none() {
                continue;
            }
            if self.send_assignment(id, round, RoundMode::Eval, down) {
                pending.push(id);
            } else {
                *self.conn_mut(id) = None;
            }
        }
        let mut entries: Vec<EdgeEntry> = Vec::new();
        for id in pending {
            match self.collect_eval(id, round) {
                Ok(accuracy) => entries.push(EdgeEntry {
                    client_id: id as u32,
                    n_samples: 0,
                    tau: 0,
                    diverged: false,
                    keep_ratio: 0.0,
                    flops_ratio: 0.0,
                    accuracy,
                    bytes_download: 0,
                    bytes_upload: 0,
                    upload_payload: 0,
                    upload_framed: 0,
                    frames: Vec::new(),
                }),
                Err(_) => {
                    *self.conn_mut(id) = None;
                }
            }
        }
        EdgeCombined {
            edge_id: self.opts.edge_id as u32,
            round,
            faults: TierFaultCounters::default(),
            entries,
            reduced: None,
        }
    }

    fn conn(&self, global_id: usize) -> &Option<TcpStream> {
        &self.conns[global_id - self.range.start]
    }

    fn conn_mut(&mut self, global_id: usize) -> &mut Option<TcpStream> {
        &mut self.conns[global_id - self.range.start]
    }

    /// Accept and register every client connection currently pending on
    /// the listener (same handshake the root runs, restricted to this
    /// edge's id slice).
    fn accept_pending(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = self.handshake(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn handshake(&mut self, mut stream: TcpStream) -> Result<(), NetError> {
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.opts.io_timeout))?;
        stream.set_write_timeout(Some(self.opts.io_timeout))?;
        let frame = read_frame(&mut stream, self.opts.max_frame)?
            .ok_or_else(|| NetError::Protocol("connection closed before Hello".into()))?;
        let (msg, payload) = open(&frame)?;
        if msg != MsgType::Hello {
            return Err(NetError::Protocol(format!("expected Hello, got {msg:?}")));
        }
        let hello = Hello::decode(payload)?;
        let id = hello.client_id as usize;
        let accepted = hello.role == HelloRole::Client
            && self.range.contains(&id)
            && hello.fingerprint == self.fingerprint;
        let verdict = Join {
            accepted,
            round: self.cohorts.len() as u32,
        };
        write_frame(&mut stream, &seal(MsgType::Join, &verdict.encode()))?;
        if accepted {
            *self.conn_mut(id) = Some(stream);
            Ok(())
        } else {
            Err(NetError::Rejected)
        }
    }

    /// Forward one assignment plus the download frames to one client;
    /// returns whether every write succeeded.
    fn send_assignment(
        &mut self,
        id: usize,
        round: u32,
        mode: RoundMode,
        frames: &[Vec<u8>],
    ) -> bool {
        let assign = RoundAssign {
            round,
            mode,
            n_frames: frames.len() as u32,
        };
        let stream = match self.conn_mut(id).as_mut() {
            Some(s) => s,
            None => return false,
        };
        if write_frame(stream, &seal(MsgType::RoundAssign, &assign.encode())).is_err() {
            return false;
        }
        for f in frames {
            if write_frame(stream, f).is_err() {
                return false;
            }
        }
        true
    }

    fn classify(e: &StreamError) -> CollectFailure {
        match e {
            StreamError::Io(io)
                if matches!(
                    io.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                CollectFailure::Timeout
            }
            _ => CollectFailure::Disconnect,
        }
    }

    /// Block (up to the round deadline) for one client's [`RoundDone`]
    /// header, then read its upload frames.
    fn collect_upload(&mut self, id: usize, round: u32) -> Result<Collected, CollectFailure> {
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        let stream = match self.conn_mut(id).as_mut() {
            Some(s) => s,
            None => return Err(CollectFailure::Disconnect),
        };
        if stream.set_read_timeout(Some(round_timeout)).is_err() {
            return Err(CollectFailure::Disconnect);
        }
        let header = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let (msg, payload) = match open(&header) {
            Ok(x) => x,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        match msg {
            MsgType::Shutdown => return Err(CollectFailure::Shutdown),
            MsgType::RoundDone => {}
            _ => return Err(CollectFailure::Disconnect),
        }
        let done = match RoundDone::decode(payload) {
            Ok(d) => d,
            Err(e) => return Err(CollectFailure::Corrupt(e.to_string())),
        };
        if done.round != round || done.client_id as usize != id || done.mode != RoundMode::Train {
            return Err(CollectFailure::Disconnect);
        }
        let mut frames = Vec::with_capacity(done.n_frames as usize);
        for _ in 0..done.n_frames {
            match read_frame(stream, max_frame) {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => return Err(CollectFailure::Disconnect),
                Err(e) => return Err(Self::classify(&e)),
            }
        }
        Ok(Collected {
            meta: meta_outcome(&done),
            frames,
        })
    }

    /// Read one client's evaluation report.
    fn collect_eval(&mut self, id: usize, round: u32) -> Result<f32, CollectFailure> {
        let max_frame = self.opts.max_frame;
        let round_timeout = self.opts.round_timeout;
        let stream = match self.conn_mut(id).as_mut() {
            Some(s) => s,
            None => return Err(CollectFailure::Disconnect),
        };
        if stream.set_read_timeout(Some(round_timeout)).is_err() {
            return Err(CollectFailure::Disconnect);
        }
        let frame = match read_frame(stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(CollectFailure::Disconnect),
            Err(e) => return Err(Self::classify(&e)),
        };
        let (msg, payload) = match open(&frame) {
            Ok(x) => x,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        match msg {
            MsgType::Shutdown => return Err(CollectFailure::Shutdown),
            MsgType::RoundDone => {}
            _ => return Err(CollectFailure::Disconnect),
        }
        let done = match RoundDone::decode(payload) {
            Ok(d) => d,
            Err(_) => return Err(CollectFailure::Disconnect),
        };
        if done.round != round || done.client_id as usize != id || done.mode != RoundMode::Eval {
            return Err(CollectFailure::Disconnect);
        }
        Ok(done.accuracy)
    }

    /// Forward [`MsgType::Shutdown`] to every connected client so the
    /// subtree exits cleanly.
    fn shutdown_clients(&mut self) {
        let bye = seal(MsgType::Shutdown, &[]);
        for conn in self.conns.iter_mut() {
            if let Some(stream) = conn.as_mut() {
                let _ = write_frame(stream, &bye);
            }
            *conn = None;
        }
    }
}

/// Rebuild the bookkeeping half of a [`LocalOutcome`] from a client's
/// [`RoundDone`] header (tensor fields stay empty until decode).
fn meta_outcome(done: &RoundDone) -> LocalOutcome {
    LocalOutcome {
        client_id: done.client_id as usize,
        n_samples: done.n_samples as usize,
        tau: done.tau as usize,
        delta: Vec::new(),
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: done.diverged,
        bytes: RoundBytes {
            download: done.bytes_download,
            upload: done.bytes_upload,
        },
        wire: WireBytes {
            download_payload: 0,
            download_framed: 0,
            upload_payload: done.upload_payload,
            upload_framed: done.upload_framed,
        },
        frames: Vec::new(),
        keep_ratio: done.keep_ratio,
        flops_ratio: done.flops_ratio,
    }
}
