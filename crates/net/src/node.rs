//! The client side of the networked runtime: one federated client behind
//! a TCP connection, with reconnect-and-resume behaviour.
//!
//! A node owns its [`ClientState`] across connections: control variates,
//! participation counts and the fine-tuned selection agent all live here,
//! so a coordinator restart (or a transient network failure) costs the
//! session nothing client-side — the node reconnects with capped
//! exponential backoff, re-registers with the same id and fingerprint,
//! and carries on from whatever round the coordinator assigns next.
//!
//! The node needs no awareness of the server's concurrency: the
//! coordinator collects the cohort's uploads concurrently (DESIGN.md
//! §12), so this node's reply may start being read before slower peers
//! have finished training — or sit in kernel buffers until the readiness
//! sweep admits it. Either way the protocol this file speaks is
//! unchanged, and the round outcome is arrival-order-independent by
//! construction on the server side.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use spatl_fl::{decode_download, ChaosInjector, ClientState, FlConfig};
use spatl_wire::{open, read_frame, seal, write_frame, MsgType, MAX_FRAME_PAYLOAD};

use crate::proto::{
    session_fingerprint, Hello, HelloRole, Join, RoundAssign, RoundDone, RoundMode,
};
use crate::NetError;

/// Tunables of a [`ClientNode`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Coordinator address to connect to.
    pub addr: String,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the reconnect delay.
    pub backoff_cap: Duration,
    /// Consecutive connection failures tolerated before giving up. Resets
    /// whenever a session is established.
    pub max_reconnects: u32,
    /// Upper bound on a single frame's payload accepted from the server.
    pub max_frame: usize,
    /// Write deadline towards the coordinator, and the read deadline for
    /// the handshake's Join answer. Mid-session reads block indefinitely —
    /// the gap until the next assignment is bounded by the slowest peer's
    /// training, and a dead coordinator surfaces as EOF, not a hang. The
    /// handshake is different: a listener that accepted the dial but never
    /// answers (a backlogged or finished coordinator) must not park the
    /// node forever, so the Join read is bounded.
    pub write_timeout: Duration,
    /// Secondary coordinator address to fail over to (DESIGN.md §14):
    /// in a tiered deployment this is the *root*, dialed when the home
    /// edge stops answering. `None` disables failover.
    pub fallback_addr: Option<String>,
    /// Consecutive primary-connection failures before the node dials
    /// `fallback_addr` instead. A fallback registration the root rejects
    /// (the home edge is alive again) sends the node back to the primary.
    pub fallback_after: u32,
}

impl NodeConfig {
    /// Defaults for a coordinator at `addr`: 50 ms base backoff capped at
    /// 2 s, 40 reconnect attempts, 30 s write deadline, no failover.
    pub fn new(addr: impl Into<String>) -> Self {
        NodeConfig {
            addr: addr.into(),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_reconnects: 40,
            max_frame: MAX_FRAME_PAYLOAD,
            write_timeout: Duration::from_secs(30),
            fallback_addr: None,
            fallback_after: 3,
        }
    }
}

/// What a node did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeReport {
    /// Rounds in which this node trained and uploaded an update.
    pub rounds_trained: usize,
    /// Evaluation passes answered.
    pub rounds_evaluated: usize,
    /// Sessions re-established after a lost connection.
    pub reconnects: usize,
    /// Train assignments answered from the reply cache instead of
    /// retraining (a coordinator replayed a round after a crash).
    pub replays: usize,
}

/// The node's reply to its last Train assignment, kept so a replayed
/// assignment of the same round (a coordinator recovering from its
/// write-ahead log) is answered from cache. `local_update` is not
/// idempotent — it advances control variates, participation counts and
/// the selection agent — so training the same round twice would fork the
/// client's state from what the simulator (and the pre-crash run) would
/// hold.
struct TrainReply {
    round: u32,
    done: RoundDone,
    frames: Vec<Vec<u8>>,
}

/// How a served session ended.
enum SessionEnd {
    /// The coordinator broadcast [`MsgType::Shutdown`]: clean exit.
    Shutdown,
    /// The connection broke; the node should reconnect.
    Lost,
}

/// One federated client node: a [`ClientState`] plus the connect/serve
/// loop that keeps it registered with the coordinator.
pub struct ClientNode {
    cfg: FlConfig,
    state: ClientState,
    opts: NodeConfig,
    report: NodeReport,
    cache: Option<TrainReply>,
    /// Whether a session was ever established (so the next successful
    /// registration counts as a reconnect).
    registered: bool,
    /// Transport chaos this node injects into its own uploads, when the
    /// session configures a [`spatl_fl::ChaosPlan`]. Chaos is applied
    /// sender-side so the coordinator observes real torn frames and real
    /// duplicate transmissions, not simulated ledger entries.
    chaos: Option<ChaosInjector>,
    /// The round whose upload this node already tore once — a chaos
    /// reset fires on the first transmission attempt only, so the
    /// post-reconnect retry always goes through clean (chaos delays
    /// rounds, it never deadlocks them).
    torn_round: Option<u32>,
}

impl ClientNode {
    /// Wrap one client (its shard index is the wire client id). `cfg`
    /// must equal the coordinator's configuration — the handshake
    /// fingerprint enforces this.
    pub fn new(cfg: FlConfig, state: ClientState, opts: NodeConfig) -> Self {
        ClientNode {
            chaos: cfg.chaos.map(ChaosInjector::new),
            cfg,
            state,
            opts,
            report: NodeReport::default(),
            cache: None,
            registered: false,
            torn_round: None,
        }
    }

    /// Parameter count the broadcast global vector must carry for this
    /// session (encoder only under transfer-mode SPATL, encoder plus
    /// predictor otherwise).
    fn expected_params(&self) -> usize {
        let mut p = self.state.model.encoder.num_params();
        if !self.cfg.algorithm.uses_transfer() {
            p += self.state.model.predictor.num_params();
        }
        p
    }

    fn backoff(&self, consecutive_failures: u32) -> Duration {
        let exp = consecutive_failures.saturating_sub(1).min(16);
        self.opts
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.opts.backoff_cap)
    }

    /// Serve until the coordinator shuts the session down. Reconnects
    /// with capped exponential backoff on connection loss; gives up after
    /// `max_reconnects` consecutive failures. With a `fallback_addr`
    /// configured, `fallback_after` consecutive primary failures switch
    /// the dial target to the fallback (a dead edge's clients re-register
    /// directly at the root); a fallback rejection — the home edge is
    /// alive after all — sends the node back to the primary. Returns the
    /// final client state (for inspection) and the lifetime report.
    pub fn run(mut self) -> Result<(ClientState, NodeReport), NetError> {
        let fingerprint = session_fingerprint(&self.cfg);
        let mut failures = 0u32;
        // Fallback rejections get their own budget so an edge/root pair
        // that bounces the node back and forth cannot loop forever.
        let mut fallback_rejects = 0u32;
        loop {
            let use_fallback =
                self.opts.fallback_addr.is_some() && failures >= self.opts.fallback_after;
            let addr = match (&self.opts.fallback_addr, use_fallback) {
                (Some(fallback), true) => fallback.clone(),
                _ => self.opts.addr.clone(),
            };
            match TcpStream::connect(&addr) {
                Ok(stream) => match self.session(stream, fingerprint) {
                    Ok(SessionEnd::Shutdown) => return Ok((self.state, self.report)),
                    Ok(SessionEnd::Lost) => {
                        // A session was established, so the budget resets.
                        failures = 0;
                    }
                    Err(NetError::Rejected) if use_fallback => {
                        fallback_rejects += 1;
                        if fallback_rejects > self.opts.max_reconnects {
                            return Err(NetError::Rejected);
                        }
                        // Back to the primary: the home edge answered for
                        // this id at the root, so it should be dialable.
                        failures = 0;
                    }
                    Err(NetError::Rejected) => return Err(NetError::Rejected),
                    Err(_) => failures += 1,
                },
                Err(_) => failures += 1,
            }
            if failures > self.opts.max_reconnects {
                return Err(NetError::Disconnected);
            }
            // An established-then-lost session redials immediately: the
            // peer closed cleanly, and waiting a backoff period here can
            // cost a dead edge's clients the rest of the round they are
            // failing over into. Backoff applies only after failed dials.
            if failures > 0 {
                std::thread::sleep(self.backoff(failures));
            }
        }
    }

    /// One connection's lifetime: handshake, then serve assignments until
    /// shutdown or disconnect.
    fn session(&mut self, mut stream: TcpStream, fingerprint: u64) -> Result<SessionEnd, NetError> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.opts.write_timeout))?;
        stream.set_read_timeout(Some(self.opts.write_timeout))?;
        let hello = Hello {
            client_id: self.state.id as u32,
            fingerprint,
            role: HelloRole::Client,
        };
        write_frame(&mut stream, &seal(MsgType::Hello, &hello.encode()))?;
        let frame = read_frame(&mut stream, self.opts.max_frame)?
            .ok_or_else(|| NetError::Protocol("connection closed before Join".into()))?;
        let (msg, payload) = open(&frame)?;
        if msg != MsgType::Join {
            return Err(NetError::Protocol(format!("expected Join, got {msg:?}")));
        }
        if !Join::decode(payload)?.accepted {
            return Err(NetError::Rejected);
        }
        // Registered: from here on the gap until the next assignment is
        // bounded by the cohort's slowest trainer, so reads block freely.
        stream.set_read_timeout(None)?;
        if self.registered {
            self.report.reconnects += 1;
        }
        self.registered = true;

        loop {
            let frame = match read_frame(&mut stream, self.opts.max_frame) {
                Ok(Some(f)) => f,
                Ok(None) => return Ok(SessionEnd::Lost),
                Err(e) => {
                    if e.is_transport_corruption() {
                        return Ok(SessionEnd::Lost);
                    }
                    return Err(e.into());
                }
            };
            let (msg, payload) = open(&frame)?;
            match msg {
                MsgType::Shutdown => return Ok(SessionEnd::Shutdown),
                MsgType::RoundAssign => {
                    let assign = RoundAssign::decode(payload)?;
                    let mut frames = Vec::with_capacity(assign.n_frames as usize);
                    for _ in 0..assign.n_frames {
                        match read_frame(&mut stream, self.opts.max_frame) {
                            Ok(Some(f)) => frames.push(f),
                            Ok(None) => return Ok(SessionEnd::Lost),
                            Err(e) => return Err(e.into()),
                        }
                    }
                    let global = decode_download(&self.cfg, &frames, self.expected_params())?;
                    match assign.mode {
                        RoundMode::Train => {
                            // A round this node already trained (a
                            // coordinator replaying from its write-ahead
                            // log) is answered from the cached reply —
                            // retraining would fork the client state.
                            let replayed = matches!(
                                &self.cache, Some(c) if c.round == assign.round
                            );
                            if !replayed {
                                let outcome = self.state.local_update(
                                    &self.cfg,
                                    &global,
                                    assign.round as usize,
                                );
                                let done = RoundDone {
                                    round: assign.round,
                                    mode: RoundMode::Train,
                                    client_id: self.state.id as u32,
                                    n_samples: outcome.n_samples as u64,
                                    tau: outcome.tau as u64,
                                    diverged: outcome.diverged,
                                    keep_ratio: outcome.keep_ratio,
                                    flops_ratio: outcome.flops_ratio,
                                    accuracy: 0.0,
                                    bytes_download: outcome.bytes.download,
                                    bytes_upload: outcome.bytes.upload,
                                    upload_payload: outcome.wire.upload_payload,
                                    upload_framed: outcome.wire.upload_framed,
                                    n_frames: outcome.frames.len() as u32,
                                };
                                // Cache before the first send attempt: if
                                // the send itself dies mid-way, the
                                // reconnected session replays the reply.
                                self.cache = Some(TrainReply {
                                    round: assign.round,
                                    done,
                                    frames: outcome.frames,
                                });
                            }
                            let reply = self.cache.as_ref().expect("reply cached above");
                            let round = assign.round as usize;
                            let id = self.state.id;
                            if let Some(chaos) = &self.chaos {
                                // Transport chaos, sender-side. A stall
                                // delays the reply; a scheduled reset
                                // tears the first transmission attempt
                                // mid-frame and drops the connection (the
                                // reconnect retry goes through clean); a
                                // duplicate sends the whole reply twice.
                                if let Some(d) = chaos.stalls(round, id) {
                                    std::thread::sleep(d);
                                }
                                if chaos.resets_upload(round, id)
                                    && self.torn_round != Some(assign.round)
                                {
                                    self.torn_round = Some(assign.round);
                                    write_frame(
                                        &mut stream,
                                        &seal(MsgType::RoundDone, &reply.done.encode()),
                                    )?;
                                    if let Some(f0) = reply.frames.first() {
                                        // Sealed frames are self-delimiting,
                                        // so a strict prefix of the frame's
                                        // bytes is exactly a torn frame.
                                        let cut = chaos.torn_cut(round, id, f0.len());
                                        stream.write_all(&f0[..cut])?;
                                        stream.flush()?;
                                    }
                                    // Die without goodbye: the server's
                                    // FrameReader sees a torn frame, then
                                    // EOF. The reconnect loop takes over.
                                    drop(stream);
                                    return Ok(SessionEnd::Lost);
                                }
                            }
                            let copies = 1 + self
                                .chaos
                                .as_ref()
                                .map_or(0, |c| usize::from(c.duplicates_upload(round, id)));
                            for _ in 0..copies {
                                write_frame(
                                    &mut stream,
                                    &seal(MsgType::RoundDone, &reply.done.encode()),
                                )?;
                                for f in &reply.frames {
                                    write_frame(&mut stream, f)?;
                                }
                            }
                            if replayed {
                                self.report.replays += 1;
                            } else {
                                self.report.rounds_trained += 1;
                            }
                        }
                        RoundMode::Eval => {
                            let acc = self.state.sync_and_evaluate(&self.cfg, &global);
                            let done = RoundDone {
                                round: assign.round,
                                mode: RoundMode::Eval,
                                client_id: self.state.id as u32,
                                n_samples: 0,
                                tau: 0,
                                diverged: false,
                                keep_ratio: 0.0,
                                flops_ratio: 0.0,
                                accuracy: acc,
                                bytes_download: 0,
                                bytes_upload: 0,
                                upload_payload: 0,
                                upload_framed: 0,
                                n_frames: 0,
                            };
                            write_frame(&mut stream, &seal(MsgType::RoundDone, &done.encode()))?;
                            self.report.rounds_evaluated += 1;
                        }
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected control message {other:?}"
                    )))
                }
            }
        }
    }
}
