//! Per-layer sparsity allocation under a global FLOPs budget.

use crate::{apply_sparsities, Criterion};
use spatl_data::Dataset;
use spatl_models::SplitModel;

/// Uniform allocation: the same sparsity at every prune point.
pub fn uniform_sparsities(model: &SplitModel, sparsity: f32) -> Vec<f32> {
    vec![sparsity.clamp(0.0, 0.95); model.prune_points.len()]
}

/// Simplified DSA-style (differentiable sparsity allocation) budgeted
/// search: find per-layer sparsities meeting `target_flops_ratio` while
/// minimising validation-accuracy loss.
///
/// The original DSA relaxes the allocation with differentiable masks; this
/// reproduction uses the same objective but optimises it with coordinate
/// descent over layers, measuring accuracy on a held-out batch — adequate
/// at the model scales of the harness and entirely deterministic.
pub fn dsa_allocate(
    model: &SplitModel,
    target_flops_ratio: f32,
    val: &Dataset,
    criterion: Criterion,
    iterations: usize,
) -> Vec<f32> {
    let n = model.prune_points.len();
    let dense = model.flops_dense() as f32;
    assert!(n > 0, "model has no prune points");

    let eval = |sparsities: &[f32]| -> (f32, f32) {
        let mut m = model.clone();
        apply_sparsities(&mut m, sparsities, criterion);
        let batch = val.as_batch();
        let acc = m.evaluate(&batch.images, &batch.labels);
        let ratio = m.flops() as f32 / dense;
        (acc, ratio)
    };

    // Start uniform at the sparsity that roughly hits the budget.
    let mut lo = 0.0f32;
    let mut hi = 0.95f32;
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        let (_, ratio) = eval(&vec![mid; n]);
        if ratio > target_flops_ratio {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut sparsities = vec![0.5 * (lo + hi); n];
    let (mut best_acc, _) = eval(&sparsities);

    // Coordinate descent: try shifting sparsity between layer pairs,
    // keeping moves that preserve the budget and improve accuracy.
    let step = 0.15f32;
    for it in 0..iterations {
        let i = it % n;
        let j = (it + 1 + it / n) % n;
        if i == j {
            continue;
        }
        let mut cand = sparsities.clone();
        cand[i] = (cand[i] - step).clamp(0.0, 0.95);
        cand[j] = (cand[j] + step).clamp(0.0, 0.95);
        let (acc, ratio) = eval(&cand);
        if ratio <= target_flops_ratio * 1.05 && acc >= best_acc {
            sparsities = cand;
            best_acc = acc;
        }
    }
    sparsities
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_data::{synth_cifar10, SynthConfig};
    use spatl_models::{ModelConfig, ModelKind};

    #[test]
    fn uniform_matches_prune_point_count() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let s = uniform_sparsities(&m, 0.4);
        assert_eq!(s.len(), m.prune_points.len());
        assert!(s.iter().all(|&v| (v - 0.4).abs() < 1e-6));
    }

    #[test]
    fn uniform_clamps_extremes() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        assert!(uniform_sparsities(&m, 2.0).iter().all(|&v| v <= 0.95));
    }

    #[test]
    fn dsa_meets_flops_budget() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let cfg = SynthConfig::cifar10_like();
        let val = synth_cifar10(&cfg, 40, 1);
        let s = dsa_allocate(&m, 0.6, &val, Criterion::L2, 6);
        let mut pruned = m.clone();
        apply_sparsities(&mut pruned, &s, Criterion::L2);
        let ratio = pruned.flops() as f32 / m.flops_dense() as f32;
        assert!(ratio <= 0.7, "ratio {ratio}");
    }
}
