//! Soft filter pruning (SFP, He et al. 2018) baseline.

use crate::{channel_saliency, mask_from_sparsity, Criterion};
use serde::{Deserialize, Serialize};
use spatl_models::SplitModel;

/// Soft filter pruning: between training epochs, the lowest-norm filters of
/// each prunable layer are *zeroed but kept trainable*, letting the network
/// recover capacity; after the final epoch the zeroing becomes a hard mask.
///
/// Used as a Table IV baseline against the RL selection agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftFilterPruner {
    /// Fraction of channels to prune in every prunable layer.
    pub sparsity: f32,
    /// Saliency criterion (SFP uses the L2 norm in the original paper).
    pub criterion: Criterion,
}

impl SoftFilterPruner {
    /// Create an SFP schedule with the given per-layer sparsity.
    pub fn new(sparsity: f32) -> Self {
        SoftFilterPruner {
            sparsity,
            criterion: Criterion::L2,
        }
    }

    /// Soft step: zero the weights of the lowest-saliency channels in every
    /// prunable layer, but leave them unmasked so gradients keep flowing.
    pub fn soft_step(&self, model: &mut SplitModel) {
        for idx in 0..model.prune_points.len() {
            let layer = model.prune_points[idx].layer;
            let mask = {
                let conv = model.conv_at(layer);
                let sal = channel_saliency(conv, self.criterion);
                mask_from_sparsity(&sal, self.sparsity)
            };
            let conv = model.conv_at_mut(layer);
            let out_c = conv.out_channels;
            let patch = conv.weight.value.numel() / out_c;
            for (c, &m) in mask.iter().enumerate() {
                if m == 0.0 {
                    for v in &mut conv.weight.value.data_mut()[c * patch..(c + 1) * patch] {
                        *v = 0.0;
                    }
                    conv.bias.value.data_mut()[c] = 0.0;
                }
            }
        }
    }

    /// Final hard step: convert the zeroing into channel masks so FLOPs
    /// accounting reflects the pruned structure.
    pub fn harden(&self, model: &mut SplitModel) {
        for idx in 0..model.prune_points.len() {
            let layer = model.prune_points[idx].layer;
            let mask = {
                let conv = model.conv_at(layer);
                let sal = channel_saliency(conv, self.criterion);
                mask_from_sparsity(&sal, self.sparsity)
            };
            model.set_mask(idx, mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_models::{ModelConfig, ModelKind};

    #[test]
    fn soft_step_zeroes_but_does_not_mask() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let sfp = SoftFilterPruner::new(0.5);
        sfp.soft_step(&mut m);
        // No masks applied yet — FLOPs unchanged.
        assert_eq!(m.flops(), m.flops_dense());
        // But some filters are exactly zero.
        let conv = m.conv_at(m.prune_points[0].layer);
        let patch = conv.weight.value.numel() / conv.out_channels;
        let zero_channels = (0..conv.out_channels)
            .filter(|&c| {
                conv.weight.value.data()[c * patch..(c + 1) * patch]
                    .iter()
                    .all(|&v| v == 0.0)
            })
            .count();
        assert_eq!(zero_channels, conv.out_channels / 2);
    }

    #[test]
    fn harden_applies_masks() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let sfp = SoftFilterPruner::new(0.5);
        sfp.soft_step(&mut m);
        sfp.harden(&mut m);
        assert!(m.flops() < m.flops_dense());
        for r in m.keep_ratios() {
            assert!(r <= 0.51, "keep ratio {r}");
        }
    }
}
