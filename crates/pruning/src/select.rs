//! Salient-parameter index selection (§IV-C1).
//!
//! After the agent masks encoder channels, SPATL uploads **only the
//! parameters of surviving channels** plus their indices. This module maps
//! the model's current channel masks to flat indices into
//! `encoder.to_flat()` — the exact payload the `spatl-fl` server aggregates
//! with Eq. 12.

use spatl_models::{LayerRef, SplitModel};

/// Flat-layout parameter names (`weight`, `bias`) of a prune point, as they
/// appear in `encoder.param_specs()`.
pub fn prune_point_param_names(layer: LayerRef) -> (String, String) {
    match layer {
        LayerRef::Seq(i) => (format!("node{i}.w"), format!("node{i}.b")),
        LayerRef::ResConv1(i) => (format!("node{i}.conv1.w"), format!("node{i}.conv1.b")),
    }
}

/// Indices into the encoder's flat parameter vector that are *salient*
/// under the model's current channel masks: for each masked convolution,
/// only the weight rows / bias entries of active output channels; every
/// parameter of all other layers.
///
/// The result is sorted and duplicate-free, so it can be paired with the
/// values it selects and aggregated server-side without any dimension
/// mismatch (the server indexes its own copy of the dense layout).
pub fn salient_param_indices(model: &SplitModel) -> Vec<u32> {
    // Masked-layer lookup: spec name -> (mask, is_weight).
    let mut masked: std::collections::HashMap<String, (Vec<f32>, bool)> =
        std::collections::HashMap::new();
    for p in &model.prune_points {
        let conv = model.conv_at(p.layer);
        let (wname, bname) = prune_point_param_names(p.layer);
        masked.insert(wname, (conv.channel_mask.clone(), true));
        masked.insert(bname, (conv.channel_mask.clone(), false));
    }

    let mut out: Vec<u32> = Vec::new();
    for spec in model.encoder.param_specs() {
        match masked.get(&spec.name) {
            Some((mask, is_weight)) => {
                let out_c = mask.len();
                if *is_weight {
                    let rows = spec.numel / out_c;
                    for (c, &m) in mask.iter().enumerate() {
                        if m != 0.0 {
                            let base = spec.offset + c * rows;
                            out.extend((base..base + rows).map(|i| i as u32));
                        }
                    }
                } else {
                    for (c, &m) in mask.iter().enumerate() {
                        if m != 0.0 {
                            out.push((spec.offset + c) as u32);
                        }
                    }
                }
            }
            None => {
                out.extend((spec.offset..spec.offset + spec.numel).map(|i| i as u32));
            }
        }
    }
    debug_assert!(
        out.windows(2).all(|w| w[0] < w[1]),
        "indices must be sorted unique"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_sparsities, Criterion};
    use spatl_models::{ModelConfig, ModelKind};

    #[test]
    fn unmasked_model_selects_everything() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let idx = salient_param_indices(&m);
        assert_eq!(idx.len(), m.encoder.num_params());
        assert_eq!(idx[0], 0);
        assert_eq!(*idx.last().unwrap() as usize, m.encoder.num_params() - 1);
    }

    #[test]
    fn masking_reduces_selection() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let full = salient_param_indices(&m).len();
        let n = m.prune_points.len();
        apply_sparsities(&mut m, &vec![0.5; n], Criterion::L1);
        let idx = salient_param_indices(&m);
        assert!(idx.len() < full, "{} !< {full}", idx.len());
        // Sorted and unique.
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        // All indices in range.
        assert!(idx.iter().all(|&i| (i as usize) < m.encoder.num_params()));
    }

    #[test]
    fn selected_fraction_tracks_sparsity_roughly() {
        let mut m = ModelConfig::cifar(ModelKind::Vgg11).build();
        let total = m.encoder.num_params() as f32;
        let n = m.prune_points.len();
        apply_sparsities(&mut m, &vec![0.5; n], Criterion::L2);
        let frac = salient_param_indices(&m).len() as f32 / total;
        // VGG's prunable convs hold most encoder params, so ~half the
        // encoder should be dropped (exact value depends on layer shares).
        assert!(frac > 0.3 && frac < 0.8, "frac {frac}");
    }

    #[test]
    fn selected_values_match_active_channels() {
        // Every selected weight index must belong to an active channel row.
        let mut m = ModelConfig::femnist().build();
        apply_sparsities(&mut m, &[0.75], Criterion::L1);
        let idx = salient_param_indices(&m);
        let conv = m.conv_at(m.prune_points[0].layer);
        let specs = m.encoder.param_specs();
        let wspec = specs.iter().find(|s| s.name == "node0.w").unwrap();
        let rows = wspec.numel / conv.out_channels;
        for &i in &idx {
            let i = i as usize;
            if i >= wspec.offset && i < wspec.offset + wspec.numel {
                let ch = (i - wspec.offset) / rows;
                assert!(
                    conv.channel_mask[ch] != 0.0,
                    "index {i} in pruned channel {ch}"
                );
            }
        }
    }
}
