//! Per-channel saliency and mask construction.

use serde::{Deserialize, Serialize};
use spatl_models::SplitModel;
use spatl_nn::Conv2d;
use spatl_tensor::TensorRng;

/// How to score the importance of each output channel of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Criterion {
    /// L1 norm of the channel's filter (He et al., SFP-style).
    L1,
    /// L2 norm of the channel's filter.
    L2,
    /// Distance from the geometric median of the layer's filters (FPGM):
    /// filters near the median are redundant and pruned first.
    Fpgm,
    /// Random scores (ablation control).
    Random(u64),
}

/// Score every output channel of `conv`; higher = more salient (kept
/// longer).
pub fn channel_saliency(conv: &Conv2d, criterion: Criterion) -> Vec<f32> {
    let out_c = conv.out_channels;
    let patch = conv.weight.value.numel() / out_c;
    let w = conv.weight.value.data();
    match criterion {
        Criterion::L1 => (0..out_c)
            .map(|c| w[c * patch..(c + 1) * patch].iter().map(|v| v.abs()).sum())
            .collect(),
        Criterion::L2 => (0..out_c)
            .map(|c| {
                w[c * patch..(c + 1) * patch]
                    .iter()
                    .map(|v| v * v)
                    .sum::<f32>()
                    .sqrt()
            })
            .collect(),
        Criterion::Fpgm => {
            // Sum of pairwise L2 distances to all other filters — a robust
            // proxy for distance from the geometric median: the filter
            // minimising total distance *is* (close to) the median.
            let mut scores = vec![0.0f32; out_c];
            for a in 0..out_c {
                let fa = &w[a * patch..(a + 1) * patch];
                for b in (a + 1)..out_c {
                    let fb = &w[b * patch..(b + 1) * patch];
                    let d: f32 = fa
                        .iter()
                        .zip(fb)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f32>()
                        .sqrt();
                    scores[a] += d;
                    scores[b] += d;
                }
            }
            scores
        }
        Criterion::Random(seed) => {
            let mut rng = TensorRng::seed_from(seed);
            (0..out_c).map(|_| rng.uniform(0.0, 1.0)).collect()
        }
    }
}

/// Build a keep-mask that prunes the `sparsity` fraction of channels with
/// the lowest saliency. At least one channel always survives.
pub fn mask_from_sparsity(saliency: &[f32], sparsity: f32) -> Vec<f32> {
    let n = saliency.len();
    assert!(n > 0, "empty saliency");
    let sparsity = sparsity.clamp(0.0, 1.0);
    let n_prune = ((n as f32 * sparsity).floor() as usize).min(n - 1);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| saliency[a].total_cmp(&saliency[b]));
    let mut mask = vec![1.0; n];
    for &c in order.iter().take(n_prune) {
        mask[c] = 0.0;
    }
    mask
}

/// Apply one sparsity ratio per prune point (the RL agent's action vector)
/// using the given saliency criterion.
pub fn apply_sparsities(model: &mut SplitModel, sparsities: &[f32], criterion: Criterion) {
    assert_eq!(
        sparsities.len(),
        model.prune_points.len(),
        "one sparsity per prune point required"
    );
    for (idx, &s) in sparsities.iter().enumerate() {
        let layer = model.prune_points[idx].layer;
        let sal = channel_saliency(model.conv_at(layer), criterion);
        let mask = mask_from_sparsity(&sal, s);
        model.set_mask(idx, mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_models::{ModelConfig, ModelKind};
    use spatl_tensor::TensorRng;

    fn test_conv() -> Conv2d {
        let mut rng = TensorRng::seed_from(1);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        // Make channel norms strictly increasing: 0 < 1 < 2 < 3.
        let patch = 18;
        for c in 0..4 {
            for j in 0..patch {
                conv.weight.value.data_mut()[c * patch + j] = (c as f32 + 0.5) / 4.0;
            }
        }
        conv
    }

    #[test]
    fn l1_orders_by_magnitude() {
        let conv = test_conv();
        let s = channel_saliency(&conv, Criterion::L1);
        assert!(s[0] < s[1] && s[1] < s[2] && s[2] < s[3]);
    }

    #[test]
    fn mask_prunes_lowest_saliency() {
        let s = vec![3.0, 1.0, 2.0, 4.0];
        let m = mask_from_sparsity(&s, 0.5);
        assert_eq!(m, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mask_never_prunes_everything() {
        let s = vec![1.0, 2.0];
        let m = mask_from_sparsity(&s, 1.0);
        assert_eq!(m.iter().filter(|&&v| v == 1.0).count(), 1);
    }

    #[test]
    fn zero_sparsity_keeps_all() {
        let s = vec![1.0, 2.0, 3.0];
        assert_eq!(mask_from_sparsity(&s, 0.0), vec![1.0; 3]);
    }

    #[test]
    fn fpgm_scores_outlier_highest() {
        let mut conv = test_conv();
        let patch = 18;
        // Channels 0..3 identical, channel 3 far away.
        for c in 0..3 {
            for j in 0..patch {
                conv.weight.value.data_mut()[c * patch + j] = 1.0;
            }
        }
        for j in 0..patch {
            conv.weight.value.data_mut()[3 * patch + j] = 10.0;
        }
        let s = channel_saliency(&conv, Criterion::Fpgm);
        assert!(s[3] > s[0] && s[3] > s[1] && s[3] > s[2]);
        // Identical filters share the same (lowest) score.
        assert!((s[0] - s[1]).abs() < 1e-4);
    }

    #[test]
    fn apply_sparsities_sets_expected_keep_ratios() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let n = m.prune_points.len();
        let sparsities = vec![0.5; n];
        apply_sparsities(&mut m, &sparsities, Criterion::L1);
        for (i, r) in m.keep_ratios().iter().enumerate() {
            let ch = m.prune_points[i].out_channels as f32;
            let expect = (ch - (ch * 0.5).floor()) / ch;
            assert!((r - expect).abs() < 1e-6, "point {i}: {r} vs {expect}");
        }
        assert!(m.flops() < m.flops_dense());
    }

    #[test]
    fn random_criterion_is_seeded() {
        let conv = test_conv();
        let a = channel_saliency(&conv, Criterion::Random(7));
        let b = channel_saliency(&conv, Criterion::Random(7));
        assert_eq!(a, b);
        let c = channel_saliency(&conv, Criterion::Random(8));
        assert_ne!(a, c);
    }
}
