//! Structured channel pruning for the SPATL reproduction.
//!
//! Provides:
//! * per-channel saliency criteria ([`Criterion`]: L1/L2 norm, FPGM
//!   geometric-median distance, random),
//! * mask construction from per-layer sparsity ratios — the action space of
//!   the RL selection agent,
//! * the pruning baselines of Table IV: [`SoftFilterPruner`] (SFP),
//!   FPGM-as-criterion, and a simplified DSA-style budget allocator,
//! * [`salient_param_indices`] — the mapping from channel masks to flat
//!   encoder parameter indices that SPATL uploads (§IV-C1).

mod allocate;
mod saliency;
mod select;
mod sfp;

pub use allocate::{dsa_allocate, uniform_sparsities};
pub use saliency::{apply_sparsities, channel_saliency, mask_from_sparsity, Criterion};
pub use select::{prune_point_param_names, salient_param_indices};
pub use sfp::SoftFilterPruner;
