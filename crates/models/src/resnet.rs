//! CIFAR-style residual networks (ResNet-20/32/56) and ResNet-18.

use crate::{scaled, LayerRef, ModelConfig, PrunePoint};
use spatl_nn::{BasicBlock, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Network, Node, Relu};
use spatl_tensor::TensorRng;

/// Build a CIFAR ResNet-(6n+2): stem conv + 3 stages of `n` basic blocks
/// with base widths (16, 32, 64), global average pooling, and a linear
/// classifier head as the private predictor.
pub(crate) fn build_cifar_resnet(
    config: &ModelConfig,
    n: usize,
) -> (Network, Network, Vec<PrunePoint>) {
    let mut rng = TensorRng::seed_from(config.seed);
    let w = |c: usize| scaled(c, config.width_mult);
    let widths = [w(16), w(32), w(64)];

    let mut nodes = Vec::new();
    let mut prune_points = Vec::new();

    nodes.push(Node::Conv(Conv2d::new(
        config.in_channels,
        widths[0],
        3,
        1,
        1,
        &mut rng,
    )));
    nodes.push(Node::BatchNorm(BatchNorm2d::new(widths[0])));
    nodes.push(Node::Relu(Relu::new()));

    let mut in_c = widths[0];
    for (stage, &out_c) in widths.iter().enumerate() {
        for blk in 0..n {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let node_idx = nodes.len();
            nodes.push(Node::Residual(Box::new(BasicBlock::new(
                in_c, out_c, stride, &mut rng,
            ))));
            prune_points.push(PrunePoint {
                name: format!("stage{}.block{}.conv1", stage + 1, blk),
                layer: LayerRef::ResConv1(node_idx),
                out_channels: out_c,
            });
            in_c = out_c;
        }
    }
    nodes.push(Node::GlobalAvgPool(GlobalAvgPool::new()));
    let encoder = Network::new(nodes);

    let predictor = Network::new(vec![Node::Linear(Linear::new(
        widths[2],
        config.num_classes,
        &mut rng,
    ))]);

    (encoder, predictor, prune_points)
}

/// Build a ResNet-18-style network: stem conv + 4 stages of 2 basic blocks
/// with base widths (64, 128, 256, 512), scaled by the width multiplier.
pub(crate) fn build_resnet18(config: &ModelConfig) -> (Network, Network, Vec<PrunePoint>) {
    let mut rng = TensorRng::seed_from(config.seed);
    let w = |c: usize| scaled(c, config.width_mult);
    let widths = [w(64), w(128), w(256), w(512)];

    let mut nodes = Vec::new();
    let mut prune_points = Vec::new();

    nodes.push(Node::Conv(Conv2d::new(
        config.in_channels,
        widths[0],
        3,
        1,
        1,
        &mut rng,
    )));
    nodes.push(Node::BatchNorm(BatchNorm2d::new(widths[0])));
    nodes.push(Node::Relu(Relu::new()));

    let mut in_c = widths[0];
    for (stage, &out_c) in widths.iter().enumerate() {
        for blk in 0..2 {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let node_idx = nodes.len();
            nodes.push(Node::Residual(Box::new(BasicBlock::new(
                in_c, out_c, stride, &mut rng,
            ))));
            prune_points.push(PrunePoint {
                name: format!("stage{}.block{}.conv1", stage + 1, blk),
                layer: LayerRef::ResConv1(node_idx),
                out_channels: out_c,
            });
            in_c = out_c;
        }
    }
    nodes.push(Node::GlobalAvgPool(GlobalAvgPool::new()));
    let encoder = Network::new(nodes);

    let predictor = Network::new(vec![Node::Linear(Linear::new(
        widths[3],
        config.num_classes,
        &mut rng,
    ))]);

    (encoder, predictor, prune_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;

    #[test]
    fn resnet20_has_nine_prune_points() {
        let cfg = ModelConfig::cifar(ModelKind::ResNet20);
        let (_, _, pp) = build_cifar_resnet(&cfg, 3);
        assert_eq!(pp.len(), 9); // 3 stages × 3 blocks
    }

    #[test]
    fn resnet56_has_27_prune_points() {
        let cfg = ModelConfig::cifar(ModelKind::ResNet56);
        let (_, _, pp) = build_cifar_resnet(&cfg, 9);
        assert_eq!(pp.len(), 27);
    }

    #[test]
    fn resnet18_has_eight_prune_points() {
        let cfg = ModelConfig::cifar(ModelKind::ResNet18);
        let (_, _, pp) = build_resnet18(&cfg);
        assert_eq!(pp.len(), 8);
    }

    #[test]
    fn width_multiplier_scales_channels() {
        let cfg = ModelConfig::cifar(ModelKind::ResNet20).with_width(1.0);
        let (enc, _, _) = build_cifar_resnet(&cfg, 3);
        match &enc.nodes[0] {
            Node::Conv(c) => assert_eq!(c.out_channels, 16),
            _ => panic!("stem must be conv"),
        }
        let cfg = cfg.with_width(0.5);
        let (enc, _, _) = build_cifar_resnet(&cfg, 3);
        match &enc.nodes[0] {
            Node::Conv(c) => assert_eq!(c.out_channels, 8),
            _ => panic!("stem must be conv"),
        }
    }
}
