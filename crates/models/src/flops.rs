//! Mask-aware FLOPs and parameter accounting.
//!
//! The paper evaluates inference acceleration in FLOPs ("for a fair
//! evaluation ... we calculated the FLOPs", §V-D). This module walks a
//! [`SplitModel`] symbolically, tracking spatial extents and the number of
//! channels that remain *active* under the current channel masks, and
//! reports per-layer FLOPs as if masked channels were physically removed —
//! which is what structured pruning achieves at deployment time.

use crate::SplitModel;
use serde::{Deserialize, Serialize};
use spatl_nn::{Conv2d, Node};

/// Per-layer cost summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Layer name (position-derived).
    pub name: String,
    /// Multiply-accumulate-counted floating point operations (2·MACs for
    /// conv/linear; element counts for cheap ops).
    pub flops: u64,
    /// Total trainable parameters of the layer.
    pub params_total: u64,
    /// Parameters remaining if masked channels were physically removed.
    pub params_active: u64,
}

#[derive(Debug, Clone, Copy)]
enum Sig {
    /// NCHW activations: (total channels, active channels, height, width).
    Spatial(usize, usize, usize, usize),
    /// Flat feature vector of the given length.
    Vector(usize),
}

fn conv_profile(
    c: &Conv2d,
    name: String,
    in_active: usize,
    h: usize,
    w: usize,
) -> (LayerProfile, Sig) {
    let g = spatl_tensor::Conv2dGeometry {
        in_channels: c.in_channels,
        in_h: h,
        in_w: w,
        kernel: c.kernel,
        stride: c.stride,
        padding: c.padding,
    };
    let (oh, ow) = (g.out_h(), g.out_w());
    let active_out = c.active_channels();
    let k2 = (c.kernel * c.kernel) as u64;
    let flops = 2 * k2 * in_active as u64 * active_out as u64 * (oh * ow) as u64;
    let params_total = (c.in_channels as u64 * k2 + 1) * c.out_channels as u64;
    let params_active = (in_active as u64 * k2 + 1) * active_out as u64;
    (
        LayerProfile {
            name,
            flops,
            params_total,
            params_active,
        },
        Sig::Spatial(c.out_channels, active_out, oh, ow),
    )
}

fn walk(nodes: &[Node], mut sig: Sig, prefix: &str, out: &mut Vec<LayerProfile>) -> Sig {
    for (i, node) in nodes.iter().enumerate() {
        let name = format!("{prefix}{i}");
        match node {
            Node::Conv(c) => {
                let (ca, h, w) = match sig {
                    Sig::Spatial(_, ca, h, w) => (ca, h, w),
                    Sig::Vector(_) => panic!("conv after flatten"),
                };
                let (p, next) = conv_profile(c, format!("{name}.conv"), ca, h, w);
                out.push(p);
                sig = next;
            }
            Node::BatchNorm(b) => {
                if let Sig::Spatial(ct, ca, h, w) = sig {
                    debug_assert_eq!(ct, b.channels);
                    out.push(LayerProfile {
                        name: format!("{name}.bn"),
                        flops: 2 * (ca * h * w) as u64,
                        params_total: 2 * b.channels as u64,
                        params_active: 2 * ca as u64,
                    });
                }
            }
            Node::Relu(_) => {
                let n = match sig {
                    Sig::Spatial(_, ca, h, w) => ca * h * w,
                    Sig::Vector(n) => n,
                };
                out.push(LayerProfile {
                    name: format!("{name}.relu"),
                    flops: n as u64,
                    params_total: 0,
                    params_active: 0,
                });
            }
            Node::MaxPool(p) => {
                if let Sig::Spatial(ct, ca, h, w) = sig {
                    let oh = (h - p.kernel) / p.stride + 1;
                    let ow = (w - p.kernel) / p.stride + 1;
                    out.push(LayerProfile {
                        name: format!("{name}.maxpool"),
                        flops: (ca * oh * ow * p.kernel * p.kernel) as u64,
                        params_total: 0,
                        params_active: 0,
                    });
                    sig = Sig::Spatial(ct, ca, oh, ow);
                }
            }
            Node::AvgPool(p) => {
                if let Sig::Spatial(ct, ca, h, w) = sig {
                    let oh = (h - p.kernel) / p.stride + 1;
                    let ow = (w - p.kernel) / p.stride + 1;
                    out.push(LayerProfile {
                        name: format!("{name}.avgpool"),
                        flops: (ca * oh * ow * p.kernel * p.kernel) as u64,
                        params_total: 0,
                        params_active: 0,
                    });
                    sig = Sig::Spatial(ct, ca, oh, ow);
                }
            }
            Node::GlobalAvgPool(_) => {
                if let Sig::Spatial(ct, ca, h, w) = sig {
                    out.push(LayerProfile {
                        name: format!("{name}.gap"),
                        flops: (ca * h * w) as u64,
                        params_total: 0,
                        params_active: 0,
                    });
                    let _ = ca;
                    sig = Sig::Vector(ct);
                }
            }
            Node::Flatten(_) => {
                if let Sig::Spatial(ct, _, h, w) = sig {
                    sig = Sig::Vector(ct * h * w);
                }
            }
            Node::Dropout(_) => {}
            Node::Linear(l) => {
                let n_in = match sig {
                    Sig::Vector(n) => n,
                    Sig::Spatial(..) => panic!("linear on spatial input"),
                };
                debug_assert_eq!(n_in, l.in_features);
                out.push(LayerProfile {
                    name: format!("{name}.linear"),
                    flops: 2 * (l.in_features * l.out_features) as u64,
                    params_total: ((l.in_features + 1) * l.out_features) as u64,
                    params_active: ((l.in_features + 1) * l.out_features) as u64,
                });
                sig = Sig::Vector(l.out_features);
            }
            Node::Residual(b) => {
                let (entry_total, entry_active, h, w) = match sig {
                    Sig::Spatial(ct, ca, h, w) => (ct, ca, h, w),
                    Sig::Vector(_) => panic!("residual after flatten"),
                };
                let _ = entry_total;
                // conv1 (prunable) -> bn1 -> relu -> conv2 (dense out).
                let (p1, s1) = conv_profile(&b.conv1, format!("{name}.conv1"), entry_active, h, w);
                out.push(p1);
                let (c1_active, oh, ow) = match s1 {
                    Sig::Spatial(_, ca, oh, ow) => (ca, oh, ow),
                    _ => unreachable!(),
                };
                out.push(LayerProfile {
                    name: format!("{name}.bn1"),
                    flops: 2 * (c1_active * oh * ow) as u64,
                    params_total: 2 * b.bn1.channels as u64,
                    params_active: 2 * c1_active as u64,
                });
                out.push(LayerProfile {
                    name: format!("{name}.relu1"),
                    flops: (c1_active * oh * ow) as u64,
                    params_total: 0,
                    params_active: 0,
                });
                let (p2, s2) = conv_profile(&b.conv2, format!("{name}.conv2"), c1_active, oh, ow);
                out.push(p2);
                let (out_total, out_active) = match s2 {
                    Sig::Spatial(ct, ca, ..) => (ct, ca),
                    _ => unreachable!(),
                };
                out.push(LayerProfile {
                    name: format!("{name}.bn2"),
                    flops: 2 * (out_active * oh * ow) as u64,
                    params_total: 2 * b.bn2.channels as u64,
                    params_active: 2 * out_active as u64,
                });
                if let (Some(dc), Some(db)) = (&b.down_conv, &b.down_bn) {
                    let (pd, _) = conv_profile(dc, format!("{name}.down_conv"), entry_active, h, w);
                    out.push(pd);
                    out.push(LayerProfile {
                        name: format!("{name}.down_bn"),
                        flops: 2 * (dc.active_channels() * oh * ow) as u64,
                        params_total: 2 * db.channels as u64,
                        params_active: 2 * dc.active_channels() as u64,
                    });
                }
                // Residual add + output ReLU.
                out.push(LayerProfile {
                    name: format!("{name}.add_relu"),
                    flops: 2 * (out_total * oh * ow) as u64,
                    params_total: 0,
                    params_active: 0,
                });
                // The shortcut re-injects all channels, so the block output
                // is fully active regardless of internal masks.
                sig = Sig::Spatial(out_total, out_total, oh, ow);
            }
        }
    }
    sig
}

/// Profile every layer of a split model at its configured input size.
pub fn profile(model: &SplitModel) -> Vec<LayerProfile> {
    let cfg = &model.config;
    let mut out = Vec::new();
    let sig = Sig::Spatial(cfg.in_channels, cfg.in_channels, cfg.input_hw, cfg.input_hw);
    let sig = walk(&model.encoder.nodes, sig, "enc", &mut out);
    walk(&model.predictor.nodes, sig, "pred", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use crate::{ModelConfig, ModelKind};

    #[test]
    fn profile_params_match_network_count() {
        for kind in [ModelKind::ResNet20, ModelKind::Vgg11] {
            let m = ModelConfig::cifar(kind).build();
            let prof = crate::profile(&m);
            let total: u64 = prof.iter().map(|l| l.params_total).sum();
            assert_eq!(total, m.num_params() as u64, "{kind:?}");
        }
    }

    #[test]
    fn dense_profile_has_equal_active_and_total_params() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        for l in crate::profile(&m) {
            assert_eq!(l.params_total, l.params_active, "{}", l.name);
        }
    }

    #[test]
    fn masking_half_of_one_layer_cuts_its_flops() {
        let mut m = ModelConfig::cifar(ModelKind::Vgg11).build();
        let before: u64 = crate::profile(&m).iter().map(|l| l.flops).sum();
        let ch = m.prune_points[2].out_channels;
        let mut mask = vec![1.0; ch];
        for v in mask.iter_mut().take(ch / 2) {
            *v = 0.0;
        }
        m.set_mask(2, mask);
        let after: u64 = crate::profile(&m).iter().map(|l| l.flops).sum();
        assert!(after < before);
        // Reduction is bounded by that layer's share of the total.
        assert!(after > before / 2);
    }

    #[test]
    fn conv_flops_formula_spot_check() {
        // Single conv 3->8, k=3, 16x16 with padding 1: 2·9·3·8·256.
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let prof = crate::profile(&m);
        let stem = &prof[0];
        let w16 = crate::scaled(16, m.config.width_mult);
        assert_eq!(stem.flops, 2 * 9 * 3 * w16 as u64 * 256);
    }

    #[test]
    fn deeper_models_cost_more_flops() {
        let f20 = ModelConfig::cifar(ModelKind::ResNet20).build().flops();
        let f32_ = ModelConfig::cifar(ModelKind::ResNet32).build().flops();
        let f56 = ModelConfig::cifar(ModelKind::ResNet56).build().flops();
        assert!(f20 < f32_ && f32_ < f56);
    }
}
