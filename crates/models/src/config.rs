//! Model configuration and registry.

use serde::{Deserialize, Serialize};

/// Which architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// CIFAR-style ResNet-20 (3 stages × 3 basic blocks).
    ResNet20,
    /// CIFAR-style ResNet-32 (3 stages × 5 basic blocks).
    ResNet32,
    /// CIFAR-style ResNet-56 (3 stages × 9 basic blocks) — used to pre-train
    /// the salient-parameter-selection agent.
    ResNet56,
    /// ResNet-18-style network (4 stages × 2 basic blocks) — the fine-tuning
    /// target of the agent-transfer experiment (Fig. 6).
    ResNet18,
    /// VGG-11 with batch-norm.
    Vgg11,
    /// LEAF-style 2-layer CNN for FEMNIST.
    Cnn2,
}

impl ModelKind {
    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::ResNet20 => "ResNet-20",
            ModelKind::ResNet32 => "ResNet-32",
            ModelKind::ResNet56 => "ResNet-56",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::Vgg11 => "VGG-11",
            ModelKind::Cnn2 => "2-layer CNN",
        }
    }

    /// All model kinds, for registry-style iteration.
    pub fn all() -> [ModelKind; 6] {
        [
            ModelKind::ResNet20,
            ModelKind::ResNet32,
            ModelKind::ResNet56,
            ModelKind::ResNet18,
            ModelKind::Vgg11,
            ModelKind::Cnn2,
        ]
    }
}

/// Full configuration for building a [`crate::SplitModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture.
    pub kind: ModelKind,
    /// Input channels (3 for CIFAR-like, 1 for FEMNIST-like).
    pub in_channels: usize,
    /// Square input spatial size.
    pub input_hw: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Channel width multiplier (1.0 = paper-scale widths).
    pub width_mult: f32,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl ModelConfig {
    /// CIFAR-10-like defaults at reproduction scale (16×16 inputs, ¼ width).
    pub fn cifar(kind: ModelKind) -> Self {
        ModelConfig {
            kind,
            in_channels: 3,
            input_hw: 16,
            num_classes: 10,
            width_mult: 0.25,
            seed: 0,
        }
    }

    /// FEMNIST-like defaults (1×14×14, 62 classes).
    pub fn femnist() -> Self {
        ModelConfig {
            kind: ModelKind::Cnn2,
            in_channels: 1,
            input_hw: 14,
            num_classes: 62,
            width_mult: 0.25,
            seed: 0,
        }
    }

    /// Set the initialisation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the width multiplier.
    pub fn with_width(mut self, width_mult: f32) -> Self {
        self.width_mult = width_mult;
        self
    }

    /// Build the model.
    pub fn build(&self) -> crate::SplitModel {
        crate::split::build_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ModelKind::ResNet20.name(), "ResNet-20");
        assert_eq!(ModelKind::Vgg11.name(), "VGG-11");
        assert_eq!(ModelKind::all().len(), 6);
    }

    #[test]
    fn builders_set_fields() {
        let c = ModelConfig::cifar(ModelKind::ResNet20)
            .with_seed(9)
            .with_width(0.5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.width_mult, 0.5);
        assert_eq!(c.num_classes, 10);
        let f = ModelConfig::femnist();
        assert_eq!(f.num_classes, 62);
        assert_eq!(f.in_channels, 1);
    }
}
