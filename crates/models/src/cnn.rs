//! LEAF-style 2-layer CNN for FEMNIST.

use crate::{scaled, LayerRef, ModelConfig, PrunePoint};
use spatl_nn::{Conv2d, Flatten, Linear, MaxPool2d, Network, Node, Relu};
use spatl_tensor::TensorRng;

/// Build the LEAF benchmark's 2-layer CNN: two 5×5 convolutions with 2×2
/// max-pooling, then a hidden dense layer and the classifier head.
///
/// The encoder is the two conv blocks plus flatten; the predictor is the
/// dense layers. The paper notes this model is *not* over-parameterised,
/// which is exactly why SPATL under-performs on it (§V-B) — keeping it in
/// the zoo lets the reproduction show the same failure mode.
pub(crate) fn build_cnn2(config: &ModelConfig) -> (Network, Network, Vec<PrunePoint>) {
    let mut rng = TensorRng::seed_from(config.seed);
    let c1 = scaled(32, config.width_mult);
    let c2 = scaled(64, config.width_mult);

    let mut nodes = Vec::new();
    let mut prune_points = Vec::new();

    let node_idx = nodes.len();
    nodes.push(Node::Conv(Conv2d::new(
        config.in_channels,
        c1,
        5,
        1,
        2,
        &mut rng,
    )));
    prune_points.push(PrunePoint {
        name: "conv1".to_string(),
        layer: LayerRef::Seq(node_idx),
        out_channels: c1,
    });
    nodes.push(Node::Relu(Relu::new()));
    nodes.push(Node::MaxPool(MaxPool2d::new(2, 2)));

    nodes.push(Node::Conv(Conv2d::new(c1, c2, 5, 1, 2, &mut rng)));
    nodes.push(Node::Relu(Relu::new()));
    nodes.push(Node::MaxPool(MaxPool2d::new(2, 2)));
    nodes.push(Node::Flatten(Flatten::new()));
    let encoder = Network::new(nodes);

    let spatial = config.input_hw / 4; // two 2×2 pools
    let feat = c2 * spatial * spatial;
    let hidden = scaled(2048, config.width_mult * config.width_mult);
    let predictor = Network::new(vec![
        Node::Linear(Linear::new(feat, hidden, &mut rng)),
        Node::Relu(Relu::new()),
        Node::Linear(Linear::new(hidden, config.num_classes, &mut rng)),
    ]);

    (encoder, predictor, prune_points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn2_has_single_prune_point() {
        let cfg = ModelConfig::femnist();
        let (_, _, pp) = build_cnn2(&cfg);
        assert_eq!(pp.len(), 1);
        assert_eq!(pp[0].name, "conv1");
    }

    #[test]
    fn predictor_input_matches_encoder_output() {
        let cfg = ModelConfig::femnist();
        let mut model = cfg.build();
        let mut rng = TensorRng::seed_from(3);
        let x = rng.normal_tensor([2, 1, 14, 14], 0.0, 1.0);
        let emb = model.encoder.forward(&x, false);
        // 14/4 = 3 spatial after two pools.
        let c2 = scaled(64, cfg.width_mult);
        assert_eq!(emb.dims(), &[2, c2 * 3 * 3]);
        let y = model.predictor.forward(&emb, false);
        assert_eq!(y.dims(), &[2, 62]);
    }
}
