//! VGG-11 with batch normalisation.

use crate::{scaled, LayerRef, ModelConfig, PrunePoint};
use spatl_nn::{
    BatchNorm2d, Conv2d, Dropout, GlobalAvgPool, Linear, MaxPool2d, Network, Node, Relu,
};
use spatl_tensor::TensorRng;

/// VGG-11 plan: channel widths with 'M' = 2×2 max-pool.
const PLAN: [Option<usize>; 13] = [
    Some(64),
    None,
    Some(128),
    None,
    Some(256),
    Some(256),
    None,
    Some(512),
    Some(512),
    None,
    Some(512),
    Some(512),
    None,
];

/// Build VGG-11: the convolutional feature extractor (encoder) and a
/// two-layer MLP classifier with dropout (predictor).
///
/// Max-pool steps are skipped once the spatial extent reaches 1×1 so the
/// same plan works at reduced input sizes (the paper uses 32×32 CIFAR-10;
/// the reproduction default is 16×16).
pub(crate) fn build_vgg11(config: &ModelConfig) -> (Network, Network, Vec<PrunePoint>) {
    let mut rng = TensorRng::seed_from(config.seed);
    let w = |c: usize| scaled(c, config.width_mult);

    let mut nodes = Vec::new();
    let mut prune_points = Vec::new();
    let mut in_c = config.in_channels;
    let mut spatial = config.input_hw;
    let mut conv_idx = 0usize;
    let total_convs = PLAN.iter().filter(|p| p.is_some()).count();

    for step in PLAN.iter() {
        match step {
            Some(base) => {
                let out_c = w(*base);
                let node_idx = nodes.len();
                nodes.push(Node::Conv(Conv2d::new(in_c, out_c, 3, 1, 1, &mut rng)));
                nodes.push(Node::BatchNorm(BatchNorm2d::new(out_c)));
                nodes.push(Node::Relu(Relu::new()));
                conv_idx += 1;
                // The last conv feeds the predictor embedding; keep it dense
                // so the encoder/predictor interface is stable across
                // clients with different masks.
                if conv_idx < total_convs {
                    prune_points.push(PrunePoint {
                        name: format!("features.conv{conv_idx}"),
                        layer: LayerRef::Seq(node_idx),
                        out_channels: out_c,
                    });
                }
                in_c = out_c;
            }
            None => {
                if spatial >= 2 {
                    nodes.push(Node::MaxPool(MaxPool2d::new(2, 2)));
                    spatial /= 2;
                }
            }
        }
    }
    nodes.push(Node::GlobalAvgPool(GlobalAvgPool::new()));
    let encoder = Network::new(nodes);

    let hidden = w(512);
    let predictor = Network::new(vec![
        Node::Linear(Linear::new(w(512), hidden, &mut rng)),
        Node::Relu(Relu::new()),
        Node::Dropout(Dropout::new(0.5, config.seed ^ 0xD0)),
        Node::Linear(Linear::new(hidden, config.num_classes, &mut rng)),
    ]);

    (encoder, predictor, prune_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;

    #[test]
    fn vgg11_has_eight_convs_seven_prunable() {
        let cfg = ModelConfig::cifar(ModelKind::Vgg11);
        let (enc, _, pp) = build_vgg11(&cfg);
        let convs = enc
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Conv(_)))
            .count();
        assert_eq!(convs, 8);
        assert_eq!(pp.len(), 7);
    }

    #[test]
    fn pool_count_adapts_to_input_size() {
        let cfg = ModelConfig::cifar(ModelKind::Vgg11);
        let (enc16, _, _) = build_vgg11(&cfg);
        let pools16 = enc16
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::MaxPool(_)))
            .count();
        assert_eq!(pools16, 4); // 16 -> 8 -> 4 -> 2 -> 1

        let mut cfg32 = cfg;
        cfg32.input_hw = 32;
        let (enc32, _, _) = build_vgg11(&cfg32);
        let pools32 = enc32
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::MaxPool(_)))
            .count();
        assert_eq!(pools32, 5); // full VGG-11 pooling
    }
}
