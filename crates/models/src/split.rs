//! Encoder/predictor split models.

use crate::{cnn, config::ModelKind, resnet, vgg, ModelConfig};
use serde::{Deserialize, Serialize};
use spatl_nn::{accuracy, Conv2d, Network, Node};
use spatl_tensor::Tensor;

/// Reference to a prunable convolution inside the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerRef {
    /// `encoder.nodes[i]` is a plain [`Node::Conv`].
    Seq(usize),
    /// `encoder.nodes[i]` is a residual block; the reference targets its
    /// internal `conv1` (the standard channel-pruning point of a basic
    /// block — pruning it never changes the block's output shape).
    ResConv1(usize),
}

/// A point where the salient-parameter-selection agent may apply a
/// structured channel mask.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrunePoint {
    /// Human-readable layer name.
    pub name: String,
    /// Location inside the encoder.
    pub layer: LayerRef,
    /// Output channel count of the targeted convolution.
    pub out_channels: usize,
}

/// A model split into a shared encoder and a private predictor head.
///
/// Federated learning (`spatl-fl`) aggregates **only the encoder**; each
/// client keeps its own predictor, which is how SPATL transfers the shared
/// representation to heterogeneous local data (§IV-A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitModel {
    /// Shared feature extractor.
    pub encoder: Network,
    /// Private output head.
    pub predictor: Network,
    /// Build configuration.
    pub config: ModelConfig,
    /// Channel-mask points exposed to the selection agent.
    pub prune_points: Vec<PrunePoint>,
}

pub(crate) fn build_model(config: &ModelConfig) -> SplitModel {
    let (encoder, predictor, prune_points) = match config.kind {
        ModelKind::ResNet20 => resnet::build_cifar_resnet(config, 3),
        ModelKind::ResNet32 => resnet::build_cifar_resnet(config, 5),
        ModelKind::ResNet56 => resnet::build_cifar_resnet(config, 9),
        ModelKind::ResNet18 => resnet::build_resnet18(config),
        ModelKind::Vgg11 => vgg::build_vgg11(config),
        ModelKind::Cnn2 => cnn::build_cnn2(config),
    };
    SplitModel {
        encoder,
        predictor,
        config: *config,
        prune_points,
    }
}

impl SplitModel {
    /// Full forward pass: encoder then predictor.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let emb = self.encoder.forward(input, train);
        let out = self.predictor.forward(&emb, train);
        self.encoder.recycle(emb);
        out
    }

    /// Full backward pass; returns the gradient w.r.t. the input
    /// (recyclable via [`SplitModel::recycle`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.predictor.backward(grad_out);
        let gx = self.encoder.backward(&g);
        self.predictor.recycle(g);
        gx
    }

    /// Return a tensor produced by [`SplitModel::forward`] /
    /// [`SplitModel::backward`] to the scratch pools once consumed, keeping
    /// steady-state local training allocation-free.
    pub fn recycle(&mut self, t: Tensor) {
        self.encoder.recycle(t);
    }

    /// Zero gradients in both parts.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.predictor.zero_grad();
    }

    /// Total trainable parameters (encoder + predictor).
    pub fn num_params(&self) -> usize {
        self.encoder.num_params() + self.predictor.num_params()
    }

    /// Top-1 accuracy on a batch, in evaluation mode.
    pub fn evaluate(&mut self, input: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(input, false);
        accuracy(&logits, labels)
    }

    /// Borrow the convolution a [`LayerRef`] points at.
    pub fn conv_at(&self, layer: LayerRef) -> &Conv2d {
        match layer {
            LayerRef::Seq(i) => match &self.encoder.nodes[i] {
                Node::Conv(c) => c,
                other => panic!("LayerRef::Seq({i}) is not a Conv: {other:?}"),
            },
            LayerRef::ResConv1(i) => match &self.encoder.nodes[i] {
                Node::Residual(b) => &b.conv1,
                other => panic!("LayerRef::ResConv1({i}) is not a Residual: {other:?}"),
            },
        }
    }

    /// Mutably borrow the convolution a [`LayerRef`] points at.
    pub fn conv_at_mut(&mut self, layer: LayerRef) -> &mut Conv2d {
        match layer {
            LayerRef::Seq(i) => match &mut self.encoder.nodes[i] {
                Node::Conv(c) => c,
                other => panic!("LayerRef::Seq({i}) is not a Conv: {other:?}"),
            },
            LayerRef::ResConv1(i) => match &mut self.encoder.nodes[i] {
                Node::Residual(b) => &mut b.conv1,
                other => panic!("LayerRef::ResConv1({i}) is not a Residual: {other:?}"),
            },
        }
    }

    /// Apply a channel mask at prune point `idx`.
    ///
    /// The mask is also installed on the convolution's downstream
    /// batch-norm (when present) so a pruned channel is exactly zero after
    /// normalisation — the behaviour of physically removing the channel.
    pub fn set_mask(&mut self, idx: usize, mask: Vec<f32>) {
        let layer = self.prune_points[idx].layer;
        self.conv_at_mut(layer).set_mask(mask.clone());
        if let Some(bn) = self.bn_after_mut(layer) {
            bn.set_mask(mask);
        }
    }

    /// Remove all masks (keep every channel).
    pub fn clear_masks(&mut self) {
        for i in 0..self.prune_points.len() {
            let layer = self.prune_points[i].layer;
            self.conv_at_mut(layer).clear_mask();
            if let Some(bn) = self.bn_after_mut(layer) {
                bn.clear_mask();
            }
        }
    }

    /// The batch-norm immediately consuming a prunable convolution's
    /// output, if any (VGG/ResNet convs have one; the plain CNN does not).
    fn bn_after_mut(&mut self, layer: LayerRef) -> Option<&mut spatl_nn::BatchNorm2d> {
        match layer {
            LayerRef::Seq(i) => match self.encoder.nodes.get_mut(i + 1) {
                Some(Node::BatchNorm(bn)) => Some(bn),
                _ => None,
            },
            LayerRef::ResConv1(i) => match &mut self.encoder.nodes[i] {
                Node::Residual(b) => Some(&mut b.bn1),
                _ => None,
            },
        }
    }

    /// Current per-prune-point keep ratios (`active / total`).
    pub fn keep_ratios(&self) -> Vec<f32> {
        self.prune_points
            .iter()
            .map(|p| {
                let c = self.conv_at(p.layer);
                c.active_channels() as f32 / c.out_channels as f32
            })
            .collect()
    }

    /// Drop cached activations in both parts.
    pub fn clear_caches(&mut self) {
        self.encoder.clear_caches();
        self.predictor.clear_caches();
    }

    /// Dense (unmasked) FLOPs of one forward pass at the configured input
    /// size.
    pub fn flops_dense(&self) -> u64 {
        let mut clone = self.clone();
        clone.clear_masks();
        crate::flops::profile(&clone).iter().map(|l| l.flops).sum()
    }

    /// Mask-aware FLOPs of one forward pass.
    pub fn flops(&self) -> u64 {
        crate::flops::profile(self).iter().map(|l| l.flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_tensor::TensorRng;

    fn check_model(cfg: ModelConfig, batch: usize) {
        let mut model = cfg.build();
        let mut rng = TensorRng::seed_from(1);
        let x = rng.normal_tensor(
            [batch, cfg.in_channels, cfg.input_hw, cfg.input_hw],
            0.0,
            1.0,
        );
        let y = model.forward(&x, true);
        assert_eq!(y.dims(), &[batch, cfg.num_classes], "{:?}", cfg.kind);
        let gx = model.backward(&Tensor::ones(y.dims().to_vec()));
        assert_eq!(gx.dims(), x.dims());
        assert!(!model.encoder.has_non_finite());
        assert!(!model.predictor.has_non_finite());
        assert!(
            !model.prune_points.is_empty(),
            "{:?} has no prune points",
            cfg.kind
        );
        // Every prune point resolves to a conv with the declared channels.
        for p in &model.prune_points {
            assert_eq!(model.conv_at(p.layer).out_channels, p.out_channels);
        }
    }

    #[test]
    fn resnet20_builds_and_runs() {
        check_model(ModelConfig::cifar(ModelKind::ResNet20), 2);
    }

    #[test]
    fn resnet32_builds_and_runs() {
        check_model(ModelConfig::cifar(ModelKind::ResNet32), 1);
    }

    #[test]
    fn resnet18_builds_and_runs() {
        check_model(ModelConfig::cifar(ModelKind::ResNet18), 1);
    }

    #[test]
    fn vgg11_builds_and_runs() {
        check_model(ModelConfig::cifar(ModelKind::Vgg11), 1);
    }

    #[test]
    fn cnn2_builds_and_runs() {
        check_model(ModelConfig::femnist(), 2);
    }

    #[test]
    fn resnet_depth_ordering() {
        // Parameter counts must increase with depth at fixed width.
        let p20 = ModelConfig::cifar(ModelKind::ResNet20).build().num_params();
        let p32 = ModelConfig::cifar(ModelKind::ResNet32).build().num_params();
        let p56 = ModelConfig::cifar(ModelKind::ResNet56).build().num_params();
        assert!(p20 < p32 && p32 < p56, "{p20} {p32} {p56}");
    }

    #[test]
    fn vgg_is_much_bigger_than_resnet20() {
        // The paper's Table I has VGG-11 at 42MB vs ResNet-20 at 2.1MB
        // (20×); our scaled versions must preserve the ordering.
        let vgg = ModelConfig::cifar(ModelKind::Vgg11).build().num_params();
        let r20 = ModelConfig::cifar(ModelKind::ResNet20).build().num_params();
        assert!(vgg > 5 * r20, "vgg={vgg} r20={r20}");
    }

    #[test]
    fn masks_reduce_flops() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let dense = m.flops();
        let ch = m.prune_points[0].out_channels;
        let mut mask = vec![1.0; ch];
        for v in mask.iter_mut().take(ch / 2) {
            *v = 0.0;
        }
        m.set_mask(0, mask);
        let pruned = m.flops();
        assert!(pruned < dense, "pruned={pruned} dense={dense}");
        m.clear_masks();
        assert_eq!(m.flops(), dense);
    }

    #[test]
    fn same_seed_same_weights() {
        let a = ModelConfig::cifar(ModelKind::ResNet20).with_seed(5).build();
        let b = ModelConfig::cifar(ModelKind::ResNet20).with_seed(5).build();
        assert_eq!(a.encoder.to_flat(), b.encoder.to_flat());
        let c = ModelConfig::cifar(ModelKind::ResNet20).with_seed(6).build();
        assert_ne!(c.encoder.to_flat(), a.encoder.to_flat());
    }

    #[test]
    fn keep_ratios_track_masks() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        assert!(m.keep_ratios().iter().all(|&r| (r - 1.0).abs() < 1e-6));
        let ch = m.prune_points[1].out_channels;
        let mut mask = vec![0.0; ch];
        mask[0] = 1.0;
        m.set_mask(1, mask);
        let ratios = m.keep_ratios();
        assert!((ratios[1] - 1.0 / ch as f32).abs() < 1e-6);
    }
}

#[cfg(test)]
mod bn_mask_tests {
    use super::*;
    use spatl_tensor::TensorRng;

    #[test]
    fn masked_channels_are_dead_after_batchnorm_in_eval() {
        // Regression: without masking the downstream BN, a pruned conv
        // channel re-emerges as a non-zero constant (−γμ/σ + β) and wrecks
        // deployed accuracy.
        let mut rng = TensorRng::seed_from(1);
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        // Shift BN stats away from zero so the bug would show.
        let x = rng.normal_tensor([4, 3, 16, 16], 1.0, 1.0);
        m.forward(&x, true);

        let idx = 0;
        let ch = m.prune_points[idx].out_channels;
        let mut mask = vec![1.0; ch];
        mask[0] = 0.0;
        mask[1] = 0.0;
        m.set_mask(idx, mask);

        // Probe the block's bn1 output by running the sub-path manually.
        let node_i = match m.prune_points[idx].layer {
            LayerRef::ResConv1(i) => i,
            _ => panic!("resnet prune point must be ResConv1"),
        };
        let probe = rng.normal_tensor([2, 3, 16, 16], 1.0, 1.0);
        // Run stem (nodes before the block) in eval mode.
        let mut cur = probe;
        for n in m.encoder.nodes[..node_i].iter_mut() {
            cur = n.forward(&cur, false);
        }
        if let Node::Residual(b) = &mut m.encoder.nodes[node_i] {
            let t = b.conv1.forward(&cur, false);
            let t = b.bn1.forward(&t, false);
            let spatial = t.dims()[2] * t.dims()[3];
            for img in 0..t.dims()[0] {
                for dead in 0..2 {
                    let base = (img * t.dims()[1] + dead) * spatial;
                    assert!(
                        t.data()[base..base + spatial].iter().all(|&v| v == 0.0),
                        "masked channel {dead} leaks through batch-norm"
                    );
                }
            }
        } else {
            panic!("expected residual block");
        }
    }

    #[test]
    fn clear_masks_revives_bn_channels() {
        let mut m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let ch = m.prune_points[0].out_channels;
        m.set_mask(
            0,
            vec![0.0; ch]
                .into_iter()
                .enumerate()
                .map(|(i, _)| if i == 0 { 1.0 } else { 0.0 })
                .collect(),
        );
        m.clear_masks();
        let mut rng = TensorRng::seed_from(2);
        let x = rng.normal_tensor([1, 3, 16, 16], 0.0, 1.0);
        let y = m.forward(&x, false);
        assert!(!y.has_non_finite());
        assert_eq!(m.flops(), m.flops_dense());
    }
}
