//! Model zoo for the SPATL reproduction.
//!
//! Provides the architectures evaluated in the paper — CIFAR-style
//! ResNet-20/32/56, ResNet-18, VGG-11 and the LEAF 2-layer CNN — each built
//! as a [`SplitModel`]: a shared **encoder** (what federated learning
//! aggregates) plus a private **predictor** head (what each heterogeneous
//! client keeps local, §IV-A of the paper).
//!
//! A width multiplier scales channel counts so the same topologies run at
//! laptop scale; the layer structure the salient-parameter-selection agent
//! reasons about (and the FLOPs bookkeeping) is unchanged.

mod cnn;
mod config;
mod flops;
mod resnet;
mod split;
mod vgg;

pub use config::{ModelConfig, ModelKind};
pub use flops::{profile, LayerProfile};
pub use split::{LayerRef, PrunePoint, SplitModel};

pub(crate) fn scaled(base: usize, width_mult: f32) -> usize {
    ((base as f32 * width_mult).round() as usize).max(1)
}
