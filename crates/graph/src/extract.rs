//! Build the simplified computational graph of an encoder.

use crate::Csr;
use serde::{Deserialize, Serialize};
use spatl_models::SplitModel;
use spatl_nn::Node;
use spatl_tensor::Tensor;

/// Machine-learning-level operation kinds (the edge/node vocabulary of the
/// simplified computational graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Network input feature map.
    Input,
    /// Convolution with kernel 1.
    Conv1x1,
    /// Convolution with kernel 3.
    Conv3x3,
    /// Convolution with kernel 5 or larger.
    Conv5x5,
    /// Batch normalisation.
    BatchNorm,
    /// ReLU.
    Relu,
    /// Any spatial pooling.
    Pool,
    /// Global average pooling / flatten.
    Reduce,
    /// Fully-connected.
    Linear,
    /// Residual addition.
    Add,
}

impl OpKind {
    /// Index into the one-hot feature block.
    pub fn index(&self) -> usize {
        match self {
            OpKind::Input => 0,
            OpKind::Conv1x1 => 1,
            OpKind::Conv3x3 => 2,
            OpKind::Conv5x5 => 3,
            OpKind::BatchNorm => 4,
            OpKind::Relu => 5,
            OpKind::Pool => 6,
            OpKind::Reduce => 7,
            OpKind::Linear => 8,
            OpKind::Add => 9,
        }
    }

    fn conv(kernel: usize) -> OpKind {
        match kernel {
            1 => OpKind::Conv1x1,
            3 => OpKind::Conv3x3,
            _ => OpKind::Conv5x5,
        }
    }
}

const NUM_OPS: usize = 10;
/// Node feature dimension: op one-hot + (channels, spatial, depth, prunable).
pub const FEATURE_DIM: usize = NUM_OPS + 4;

/// The simplified computational graph: RL environment state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompGraph {
    /// Node features `[n_nodes, FEATURE_DIM]`.
    pub features: Tensor,
    /// Row-normalised adjacency with self-loops.
    pub adj: Csr,
    /// Node id of each prune point, in `model.prune_points` order — the
    /// per-layer readout locations for the policy head.
    pub prune_nodes: Vec<usize>,
    /// Op kind of every node.
    pub ops: Vec<OpKind>,
}

struct Builder {
    ops: Vec<OpKind>,
    channels: Vec<usize>,
    spatial: Vec<usize>,
    edges: Vec<(usize, usize)>,
}

impl Builder {
    fn add_node(
        &mut self,
        op: OpKind,
        channels: usize,
        spatial: usize,
        from: Option<usize>,
    ) -> usize {
        let id = self.ops.len();
        self.ops.push(op);
        self.channels.push(channels);
        self.spatial.push(spatial);
        if let Some(f) = from {
            self.edges.push((f, id));
        }
        id
    }
}

/// Extract the simplified computational graph of a model's **encoder** —
/// the part the selection agent prunes.
pub fn extract(model: &SplitModel) -> CompGraph {
    let cfg = &model.config;
    let mut b = Builder {
        ops: Vec::new(),
        channels: Vec::new(),
        spatial: Vec::new(),
        edges: Vec::new(),
    };
    let mut cur = b.add_node(OpKind::Input, cfg.in_channels, cfg.input_hw, None);
    let mut spatial = cfg.input_hw;
    let mut channels = cfg.in_channels;
    // node-in-encoder index -> graph node of that layer's output (for conv
    // nodes referenced by prune points).
    let mut conv_out_node: Vec<Option<usize>> = vec![None; model.encoder.nodes.len()];
    let mut res_conv1_node: Vec<Option<usize>> = vec![None; model.encoder.nodes.len()];

    for (i, node) in model.encoder.nodes.iter().enumerate() {
        match node {
            Node::Conv(c) => {
                spatial = (spatial + 2 * c.padding - c.kernel) / c.stride + 1;
                channels = c.out_channels;
                cur = b.add_node(OpKind::conv(c.kernel), channels, spatial, Some(cur));
                conv_out_node[i] = Some(cur);
            }
            Node::BatchNorm(bn) => {
                cur = b.add_node(OpKind::BatchNorm, bn.channels, spatial, Some(cur));
            }
            Node::Relu(_) => {
                cur = b.add_node(OpKind::Relu, channels, spatial, Some(cur));
            }
            Node::MaxPool(p) => {
                spatial = (spatial - p.kernel) / p.stride + 1;
                cur = b.add_node(OpKind::Pool, channels, spatial, Some(cur));
            }
            Node::AvgPool(p) => {
                spatial = (spatial - p.kernel) / p.stride + 1;
                cur = b.add_node(OpKind::Pool, channels, spatial, Some(cur));
            }
            Node::GlobalAvgPool(_) | Node::Flatten(_) => {
                spatial = 1;
                cur = b.add_node(OpKind::Reduce, channels, 1, Some(cur));
            }
            Node::Dropout(_) => {}
            Node::Linear(l) => {
                channels = l.out_features;
                cur = b.add_node(OpKind::Linear, channels, 1, Some(cur));
            }
            Node::Residual(blk) => {
                let entry = cur;
                let s1 =
                    (spatial + 2 * blk.conv1.padding - blk.conv1.kernel) / blk.conv1.stride + 1;
                let c1 = b.add_node(
                    OpKind::conv(blk.conv1.kernel),
                    blk.conv1.out_channels,
                    s1,
                    Some(entry),
                );
                res_conv1_node[i] = Some(c1);
                let bn1 = b.add_node(OpKind::BatchNorm, blk.bn1.channels, s1, Some(c1));
                let r1 = b.add_node(OpKind::Relu, blk.bn1.channels, s1, Some(bn1));
                let c2 = b.add_node(
                    OpKind::conv(blk.conv2.kernel),
                    blk.conv2.out_channels,
                    s1,
                    Some(r1),
                );
                let bn2 = b.add_node(OpKind::BatchNorm, blk.bn2.channels, s1, Some(c2));
                let add = b.add_node(OpKind::Add, blk.conv2.out_channels, s1, Some(bn2));
                // Shortcut path.
                match &blk.down_conv {
                    Some(dc) => {
                        let d =
                            b.add_node(OpKind::conv(dc.kernel), dc.out_channels, s1, Some(entry));
                        let dbn = b.add_node(OpKind::BatchNorm, dc.out_channels, s1, Some(d));
                        b.edges.push((dbn, add));
                    }
                    None => {
                        b.edges.push((entry, add));
                    }
                }
                cur = b.add_node(OpKind::Relu, blk.conv2.out_channels, s1, Some(add));
                spatial = s1;
                channels = blk.conv2.out_channels;
            }
        }
    }

    // Resolve prune-point node ids.
    let prune_nodes: Vec<usize> = model
        .prune_points
        .iter()
        .map(|p| match p.layer {
            spatl_models::LayerRef::Seq(i) => {
                conv_out_node[i].expect("prune point refers to conv without graph node")
            }
            spatl_models::LayerRef::ResConv1(i) => {
                res_conv1_node[i].expect("prune point refers to residual without graph node")
            }
        })
        .collect();

    // Node features: one-hot op, log-scaled channels/spatial, normalised
    // depth, prunable flag.
    let n = b.ops.len();
    let mut features = Tensor::zeros([n, FEATURE_DIM]);
    let max_ch = *b.channels.iter().max().unwrap_or(&1) as f32;
    for i in 0..n {
        let f = &mut features.data_mut()[i * FEATURE_DIM..(i + 1) * FEATURE_DIM];
        f[b.ops[i].index()] = 1.0;
        f[NUM_OPS] = (b.channels[i] as f32 / max_ch).sqrt();
        f[NUM_OPS + 1] = (b.spatial[i] as f32 / cfg.input_hw as f32).sqrt();
        f[NUM_OPS + 2] = i as f32 / n as f32;
        f[NUM_OPS + 3] = if prune_nodes.contains(&i) { 1.0 } else { 0.0 };
    }

    CompGraph {
        features,
        adj: Csr::from_edges(n, &b.edges),
        prune_nodes,
        ops: b.ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_models::{ModelConfig, ModelKind};

    #[test]
    fn resnet20_graph_has_one_prune_node_per_point() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let g = extract(&m);
        assert_eq!(g.prune_nodes.len(), m.prune_points.len());
        // Prune nodes are distinct and in range.
        let mut pn = g.prune_nodes.clone();
        pn.sort_unstable();
        pn.dedup();
        assert_eq!(pn.len(), g.prune_nodes.len());
        assert!(pn.iter().all(|&i| i < g.ops.len()));
        // Each prune node is a convolution.
        for &i in &g.prune_nodes {
            assert!(matches!(
                g.ops[i],
                OpKind::Conv1x1 | OpKind::Conv3x3 | OpKind::Conv5x5
            ));
        }
    }

    #[test]
    fn residual_blocks_create_add_nodes() {
        let m = ModelConfig::cifar(ModelKind::ResNet20).build();
        let g = extract(&m);
        let adds = g.ops.iter().filter(|o| **o == OpKind::Add).count();
        assert_eq!(adds, 9); // one per basic block
    }

    #[test]
    fn vgg_graph_is_a_chain_with_no_adds() {
        let m = ModelConfig::cifar(ModelKind::Vgg11).build();
        let g = extract(&m);
        assert_eq!(g.ops.iter().filter(|o| **o == OpKind::Add).count(), 0);
        assert_eq!(g.prune_nodes.len(), 7);
    }

    #[test]
    fn features_are_finite_and_bounded() {
        for kind in [ModelKind::ResNet20, ModelKind::Vgg11] {
            let m = ModelConfig::cifar(kind).build();
            let g = extract(&m);
            assert_eq!(g.features.dims()[1], FEATURE_DIM);
            assert!(!g.features.has_non_finite());
            assert!(g.features.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deeper_model_bigger_graph() {
        let g20 = extract(&ModelConfig::cifar(ModelKind::ResNet20).build());
        let g56 = extract(&ModelConfig::cifar(ModelKind::ResNet56).build());
        assert!(g56.ops.len() > g20.ops.len());
    }

    #[test]
    fn cnn_graph_handles_flatten() {
        let m = ModelConfig::femnist().build();
        let g = extract(&m);
        assert!(g.ops.contains(&OpKind::Reduce));
        assert_eq!(g.prune_nodes.len(), 1);
    }
}
