//! Compressed sparse row adjacency with message-passing kernels.

use serde::{Deserialize, Serialize};
use spatl_tensor::Tensor;

/// A sparse matrix in CSR form, used as the (normalised) adjacency of the
/// computational graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Csr {
    /// Row pointer, length `rows + 1`.
    pub indptr: Vec<usize>,
    /// Column indices.
    pub indices: Vec<usize>,
    /// Edge weights.
    pub weights: Vec<f32>,
    /// Number of rows (= columns; adjacency is square).
    pub n: usize,
}

impl Csr {
    /// Build a row-normalised adjacency (with self-loops) from an edge
    /// list over `n` nodes. Duplicate edges are merged.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Csr {
        let mut neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} nodes");
            neigh[a].push(b);
            neigh[b].push(a);
        }
        for (i, ns) in neigh.iter_mut().enumerate() {
            ns.push(i); // self-loop
            ns.sort_unstable();
            ns.dedup();
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        indptr.push(0);
        for ns in &neigh {
            let w = 1.0 / ns.len() as f32;
            for &j in ns {
                indices.push(j);
                weights.push(w);
            }
            indptr.push(indices.len());
        }
        Csr {
            indptr,
            indices,
            weights,
            n,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `Y = A · X` for dense `X: [n, f]`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims()[0], self.n, "spmm row mismatch");
        let f = x.dims()[1];
        let mut y = Tensor::zeros([self.n, f]);
        let xd = x.data();
        let yd = y.data_mut();
        for row in 0..self.n {
            let out = &mut yd[row * f..(row + 1) * f];
            for e in self.indptr[row]..self.indptr[row + 1] {
                let col = self.indices[e];
                let w = self.weights[e];
                let src = &xd[col * f..(col + 1) * f];
                for (o, s) in out.iter_mut().zip(src) {
                    *o += w * s;
                }
            }
        }
        y
    }

    /// `Y = Aᵀ · X` — the adjoint used in the GNN backward pass.
    pub fn spmm_t(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims()[0], self.n, "spmm_t row mismatch");
        let f = x.dims()[1];
        let mut y = Tensor::zeros([self.n, f]);
        let xd = x.data();
        let yd = y.data_mut();
        for row in 0..self.n {
            let src = &xd[row * f..(row + 1) * f];
            for e in self.indptr[row]..self.indptr[row + 1] {
                let col = self.indices[e];
                let w = self.weights[e];
                let out = &mut yd[col * f..(col + 1) * f];
                for (o, s) in out.iter_mut().zip(src) {
                    *o += w * s;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalised() {
        let a = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        for row in 0..3 {
            let s: f32 = (a.indptr[row]..a.indptr[row + 1])
                .map(|e| a.weights[e])
                .sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn self_loops_always_present() {
        let a = Csr::from_edges(2, &[]);
        assert_eq!(a.nnz(), 2);
        let x = Tensor::from_vec([2, 1], vec![3.0, 5.0]).unwrap();
        let y = a.spmm(&x);
        assert_eq!(y.data(), &[3.0, 5.0]);
    }

    #[test]
    fn spmm_averages_neighbours() {
        // Path graph 0-1-2: node 1 sees {0,1,2} each with weight 1/3.
        let a = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Tensor::from_vec([3, 1], vec![3.0, 0.0, 6.0]).unwrap();
        let y = a.spmm(&x);
        assert!((y.data()[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn spmm_t_is_adjoint() {
        let a = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let x = Tensor::from_vec([4, 2], (0..8).map(|v| v as f32).collect()).unwrap();
        let y = Tensor::from_vec([4, 2], (0..8).map(|v| (v * 3 % 5) as f32).collect()).unwrap();
        // <Ax, y> == <x, Aᵀy>
        let lhs = a.spmm(&x).dot(&y).unwrap();
        let rhs = x.dot(&a.spmm_t(&y)).unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn duplicate_edges_merged() {
        let a = Csr::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(a.nnz(), 4); // each node: self + other
    }
}
