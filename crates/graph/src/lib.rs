//! Simplified computational-graph extraction (§IV-B of the paper).
//!
//! SPATL's salient-parameter-selection agent observes the encoder as a
//! *simplified computational graph*: nodes are hidden feature maps, edges
//! are machine-learning-level operations (conv 3×3, ReLU, …) rather than
//! primitive arithmetic. This crate builds that graph from a
//! [`spatl_models::SplitModel`] and provides the sparse-matrix kernels the
//! GNN in `spatl-agent` aggregates messages with.

mod csr;
mod extract;

pub use csr::Csr;
pub use extract::{extract, CompGraph, OpKind, FEATURE_DIM};
