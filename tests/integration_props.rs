//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations of the public API.

use proptest::prelude::*;
use spatl::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any Dirichlet partition of any synthetic dataset is a permutation:
    /// every sample lands on exactly one client.
    #[test]
    fn partitions_are_exact_covers(
        n in 40usize..120,
        clients in 2usize..8,
        beta in 0.1f64..5.0,
        seed in 0u64..1000,
    ) {
        let cfg = SynthConfig::cifar10_like();
        let data = synth_cifar10(&cfg, n, seed);
        let mut rng = TensorRng::seed_from(seed);
        let parts = dirichlet_partition(&data.labels, 10, clients, beta, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Selection never produces out-of-range or duplicate indices, for any
    /// sparsity level on any model kind.
    #[test]
    fn salient_indices_always_valid(
        sparsity in 0.0f32..0.95,
        kind_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let kind = [ModelKind::ResNet20, ModelKind::Vgg11, ModelKind::Cnn2][kind_idx];
        let mut model = match kind {
            ModelKind::Cnn2 => ModelConfig::femnist().with_seed(seed).build(),
            k => ModelConfig::cifar(k).with_seed(seed).build(),
        };
        let n = model.prune_points.len();
        apply_sparsities(&mut model, &vec![sparsity; n], Criterion::L1);
        let idx = salient_param_indices(&model);
        prop_assert!(!idx.is_empty());
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| (i as usize) < model.encoder.num_params()));
    }

    /// Flat export/import round-trips for every architecture.
    #[test]
    fn model_flat_round_trip(kind_idx in 0usize..5, seed in 0u64..50) {
        let kind = [
            ModelKind::ResNet20,
            ModelKind::ResNet32,
            ModelKind::ResNet18,
            ModelKind::Vgg11,
            ModelKind::Cnn2,
        ][kind_idx];
        let mut model = match kind {
            ModelKind::Cnn2 => ModelConfig::femnist().with_seed(seed).build(),
            k => ModelConfig::cifar(k).with_seed(seed).build(),
        };
        let flat = model.encoder.to_flat();
        model.encoder.from_flat(&flat);
        prop_assert_eq!(model.encoder.to_flat(), flat);
    }

    /// The FLOPs profile under masks is monotone: more sparsity never
    /// increases FLOPs, and never goes to zero.
    #[test]
    fn flops_monotone_in_sparsity(s1 in 0.0f32..0.4, extra in 0.1f32..0.5, seed in 0u64..50) {
        let mut a = ModelConfig::cifar(ModelKind::ResNet20).with_seed(seed).build();
        let mut b = a.clone();
        let n = a.prune_points.len();
        apply_sparsities(&mut a, &vec![s1; n], Criterion::L2);
        apply_sparsities(&mut b, &vec![(s1 + extra).min(0.95); n], Criterion::L2);
        prop_assert!(b.flops() <= a.flops());
        prop_assert!(b.flops() > 0);
    }

    /// Graph extraction is total over the model zoo and prune nodes always
    /// match prune points.
    #[test]
    fn graph_extraction_total(kind_idx in 0usize..4, width in 1usize..4) {
        let kind = [ModelKind::ResNet20, ModelKind::ResNet56, ModelKind::Vgg11, ModelKind::ResNet18][kind_idx];
        let cfg = ModelConfig::cifar(kind).with_width(width as f32 * 0.25);
        let model = cfg.build();
        let g = extract(&model);
        prop_assert_eq!(g.prune_nodes.len(), model.prune_points.len());
        prop_assert!(!g.features.has_non_finite());
    }
}
