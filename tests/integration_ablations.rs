//! Ablation integration tests mirroring §V-F of the paper: each SPATL
//! component can be switched off, the system still runs, and the expected
//! bookkeeping differences appear.

use spatl::prelude::*;

fn run_with(opts: SpatlOptions, seed: u64) -> RunResult {
    ExperimentBuilder::new(Algorithm::Spatl(opts))
        .model(ModelKind::ResNet20)
        .clients(4)
        .samples_per_client(50)
        .rounds(3)
        .local_epochs(1)
        .seed(seed)
        .run()
}

#[test]
fn no_selection_means_dense_uploads() {
    let opts = SpatlOptions {
        selection: false,
        ..Default::default()
    };
    let result = run_with(opts, 1);
    for r in &result.history {
        assert_eq!(
            r.mean_keep_ratio, 1.0,
            "round {} uploaded sparsely",
            r.round
        );
        assert_eq!(r.mean_flops_ratio, 1.0);
    }
}

#[test]
fn selection_reduces_upload_bytes_vs_no_selection() {
    let on = run_with(SpatlOptions::default(), 2);
    let off = run_with(
        SpatlOptions {
            selection: false,
            ..Default::default()
        },
        2,
    );
    let up = |r: &RunResult| r.history.iter().map(|h| h.bytes.upload).sum::<u64>();
    assert!(
        up(&on) < up(&off),
        "selection did not reduce upload: {} vs {}",
        up(&on),
        up(&off)
    );
    // Downloads are identical (same encoder + control).
    let down = |r: &RunResult| r.history.iter().map(|h| h.bytes.download).sum::<u64>();
    assert_eq!(down(&on), down(&off));
}

#[test]
fn no_transfer_shares_the_predictor() {
    let opts = SpatlOptions {
        transfer: false,
        ..Default::default()
    };
    let alg = Algorithm::Spatl(opts);
    assert!(!alg.uses_transfer());
    let mut sim = ExperimentBuilder::new(alg)
        .clients(3)
        .samples_per_client(40)
        .rounds(2)
        .local_epochs(1)
        .seed(3)
        .build();
    let model = sim.clients[0].model.clone();
    assert_eq!(
        sim.global.shared.len(),
        model.encoder.num_params() + model.predictor.num_params(),
        "without transfer the predictor must be in the shared vector"
    );
    sim.run();
    // All predictors equal the global copy after the final sync.
    let p0 = sim.clients[0].model.predictor.to_flat();
    let p1 = sim.clients[1].model.predictor.to_flat();
    assert_eq!(p0, p1);
}

#[test]
fn no_gradient_control_drops_control_state_and_bytes() {
    let opts = SpatlOptions {
        gradient_control: false,
        selection: false, // isolate the control ablation
        ..Default::default()
    };
    let with_ctrl = SpatlOptions {
        gradient_control: true,
        selection: false,
        ..Default::default()
    };
    let off = run_with(opts, 4);
    let on = run_with(with_ctrl, 4);
    let down = |r: &RunResult| r.history.iter().map(|h| h.bytes.download).sum::<u64>();
    assert!(
        down(&off) < down(&on),
        "disabling control should halve downloads: {} vs {}",
        down(&off),
        down(&on)
    );

    let mut sim = ExperimentBuilder::new(Algorithm::Spatl(opts))
        .clients(2)
        .samples_per_client(30)
        .rounds(1)
        .local_epochs(1)
        .seed(5)
        .build();
    sim.run();
    assert!(sim.global.control.is_empty());
    assert!(sim.clients.iter().all(|c| c.control.is_empty()));
}

#[test]
fn all_ablations_still_learn_something() {
    // Every ablated variant must remain a *working* FL algorithm.
    for (i, opts) in [
        SpatlOptions {
            selection: false,
            ..Default::default()
        },
        SpatlOptions {
            transfer: false,
            ..Default::default()
        },
        SpatlOptions {
            gradient_control: false,
            ..Default::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let result = ExperimentBuilder::new(Algorithm::Spatl(opts))
            .clients(4)
            .samples_per_client(60)
            .noise_std(1.0)
            .rounds(4)
            .local_epochs(2)
            .seed(60 + i as u64)
            .run();
        assert!(
            result.best_acc() > 0.2,
            "ablation {i} failed to learn: {}",
            result.best_acc()
        );
    }
}
