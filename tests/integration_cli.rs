//! Smoke tests for the `spatl-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spatl-cli"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().expect("spawn cli");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_command_is_rejected() {
    let out = cli().arg("frobnicate").output().expect("spawn cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_flag_value_is_rejected() {
    let out = cli()
        .args(["run", "--clients", "banana"])
        .output()
        .expect("spawn cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value"));
}

#[test]
fn tiny_run_completes_and_writes_results() {
    let dir = std::env::temp_dir().join("spatl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("run.json");
    let out = cli()
        .args([
            "run",
            "--algorithm",
            "fedavg",
            "--clients",
            "2",
            "--rounds",
            "1",
            "--samples-per-client",
            "16",
            "--local-epochs",
            "1",
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .expect("spawn cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("round   1"), "stdout: {stdout}");
    let loaded = spatl::load_result(&out_file).expect("read results back");
    assert_eq!(loaded.history.len(), 1);
    assert_eq!(loaded.algorithm, "FedAvg");
}

#[test]
fn prune_without_agent_uses_uniform_budget() {
    let out = cli()
        .args(["prune", "--model", "resnet20", "--budget", "0.6"])
        .output()
        .expect("spawn cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("FLOPs"), "stdout: {stdout}");
}
