//! Full-pipeline integration: data synthesis → partition → agent →
//! federated training → transfer, spanning every crate.

use spatl::prelude::*;

#[test]
fn spatl_full_pipeline_end_to_end() {
    let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
        .model(ModelKind::ResNet20)
        .clients(4)
        .samples_per_client(60)
        .noise_std(1.0)
        .rounds(5)
        .local_epochs(2)
        .seed(100)
        .build();
    let result = sim.run();

    // Learns above chance on a 10-class task.
    assert!(result.best_acc() > 0.25, "best acc {}", result.best_acc());
    // Selection happened and reduced both uploads and FLOPs.
    let last = result.history.last().unwrap();
    assert!(last.mean_keep_ratio < 1.0);
    assert!(last.mean_flops_ratio < 1.0);
    // Communication is strictly increasing and accounted per round.
    assert!(result.total_bytes() > 0);

    // Every client's deployed model meets (approximately) the FLOPs budget.
    for c in &sim.clients {
        if c.participations > 0 {
            let ratio = c.model.flops() as f32 / c.model.flops_dense() as f32;
            assert!(ratio <= 0.75 + 0.05, "client {} ratio {}", c.id, ratio);
        }
    }
}

#[test]
fn spatl_beats_or_matches_fedavg_on_skewed_data() {
    // The headline qualitative claim (§V-B): under heterogeneity SPATL's
    // mean accuracy is at least on par with FedAvg at the same budget of
    // rounds — run both with the same seed/partition.
    let run = |alg: Algorithm| {
        ExperimentBuilder::new(alg)
            .model(ModelKind::ResNet20)
            .clients(6)
            .samples_per_client(60)
            .beta(0.3)
            .rounds(8)
            .local_epochs(2)
            .seed(200)
            .run()
    };
    let spatl = run(Algorithm::Spatl(SpatlOptions::default()));
    let fedavg = run(Algorithm::FedAvg);
    assert!(
        spatl.best_acc() >= fedavg.best_acc() - 0.02,
        "SPATL {} worse than FedAvg {}",
        spatl.best_acc(),
        fedavg.best_acc()
    );
}

#[test]
fn transfer_to_held_out_data_works() {
    // Table III in miniature: FL on one split, predictor-transfer to a
    // disjoint split of the same task.
    let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
        .model(ModelKind::ResNet20)
        .clients(4)
        .samples_per_client(60)
        .noise_std(1.0)
        .rounds(4)
        .local_epochs(2)
        .seed(300)
        .build();
    sim.run();

    let synth = SynthConfig {
        noise_std: 0.4,
        ..SynthConfig::cifar10_like()
    };
    let transfer_train = synth_cifar10(&synth, 100, 12345);
    let transfer_val = synth_cifar10(&synth, 50, 54321);
    let model = ModelConfig::cifar(ModelKind::ResNet20).with_seed(9).build();
    let acc_fl_encoder = transfer_evaluate(
        model.clone(),
        &sim.global.shared,
        &transfer_train,
        &transfer_val,
        5,
        0.05,
        7,
    );
    let random_encoder_flat = model.encoder.to_flat();
    let acc_random_encoder = transfer_evaluate(
        model,
        &random_encoder_flat,
        &transfer_train,
        &transfer_val,
        5,
        0.05,
        7,
    );
    assert!(
        acc_fl_encoder >= acc_random_encoder - 0.05,
        "federated encoder transferred worse than random: {acc_fl_encoder} vs {acc_random_encoder}"
    );
    assert!(acc_fl_encoder > 0.15, "transfer accuracy {acc_fl_encoder}");
}

#[test]
fn femnist_pipeline_runs_with_cnn() {
    // The 2-layer CNN + LEAF-style setting (where the paper notes SPATL's
    // assumption breaks): it must still *run* correctly.
    let result = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
        .dataset(DatasetKind::FemnistLike)
        .model(ModelKind::Cnn2)
        .clients(3)
        .samples_per_client(40)
        .rounds(2)
        .local_epochs(1)
        .seed(400)
        .run();
    assert_eq!(result.history.len(), 2);
    assert!(result.final_acc().is_finite());
}

#[test]
fn agent_pretrained_elsewhere_can_be_injected() {
    // Pre-train an agent on ResNet-56 pruning, inject into a ResNet-20
    // federation — the paper's cross-architecture transfer.
    let synth = SynthConfig::cifar10_like();
    let val = synth_cifar10(&synth, 40, 5);
    let m56 = ModelConfig::cifar(ModelKind::ResNet56).build();
    let env = PruningEnv::new(m56, val, 0.7);
    let mut agent = ActorCritic::new(AgentConfig::default(), 50);
    let mut rng = TensorRng::seed_from(51);
    pretrain_agent(&mut agent, &env, 2, 2, 2, &mut rng);

    let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
        .clients(3)
        .samples_per_client(40)
        .rounds(2)
        .local_epochs(1)
        .seed(500)
        .build();
    sim.set_agent(agent);
    let result = sim.run();
    assert!(result.history.last().unwrap().mean_keep_ratio < 1.0);
}
