//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree to JSON text and parses it back.
//!
//! Supports the workspace's call surface: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], [`from_reader`] and
//! the [`json!`] macro (flat objects/arrays with expression values).

#![allow(clippy::all)]
pub use serde::Value;
use serde::{de::DeserializeOwned, Serialize};
use std::io::{Read, Write};

/// JSON (de)serialisation error.
#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io: {e}"))
    }
}

/// Serialise a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialise a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialise a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Parse a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parse a value from a JSON reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Build a [`Value`] from JSON-ish syntax. Object values and array
/// elements are arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( ($key.to_string(), ::serde::Serialize::serialize(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![
            $( ::serde::Serialize::serialize(&$elem) ),*
        ])
    };
    ($other:expr) => { ::serde::Serialize::serialize(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                if *x == x.trunc() && x.abs() < 1e15 {
                    // Keep integral floats recognisable as floats.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // JSON has no NaN/Inf; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "42", "-17", "3.5", "\"hi\""] {
            let v: Value = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trip_structures() {
        let v = json!({ "a": 1u32, "b": [1.5f32, 2.5f32], "s": "x\"y" });
        let text = to_string(&v).unwrap();
        let back: Value = parse_value(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = json!({ "outer": vec![1u32, 2, 3] });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = parse_value(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
