//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — named-field structs, tuple/unit
//! structs, and enums with unit, tuple and struct variants — plus the
//! `#[serde(skip)]` field attribute. Parsing is done directly on the
//! `proc_macro` token stream (the offline container has no syn/quote);
//! unsupported shapes (generic type parameters, other serde attributes)
//! fail the build with an explicit message rather than silently
//! mis-serialising.

#![allow(clippy::all)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    skip: bool,
}

enum Body {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with N fields (N = 1 is serialised transparently,
    /// matching serde's newtype representation).
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Item {
    name: String,
    body: Body,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    skip_attrs(&mut toks);
    skip_visibility(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }

    let body = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip `#[...]` attributes; returns true if any skipped attribute was
/// `#[serde(skip)]`.
fn skip_attrs(toks: &mut Toks) -> bool {
    let mut skip = false;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if attr_is_serde_skip(g.stream()) {
                    skip = true;
                }
            }
            other => panic!("serde derive: malformed attribute {other:?}"),
        }
    }
    skip
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut it = stream.into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.iter().any(|t| t == "skip") {
                true
            } else {
                panic!(
                    "serde derive (vendored): unsupported serde attribute `{}` (only `skip`)",
                    inner.join("")
                );
            }
        }
        _ => false,
    }
}

fn skip_visibility(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skip a type (or any token run) until a top-level `,`; consumes the comma.
/// Tracks `<`/`>` depth manually — parens and brackets arrive as opaque
/// groups, so only angle brackets need balancing.
fn skip_until_comma(toks: &mut Toks) {
    let mut angle: i32 = 0;
    for t in toks.by_ref() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while toks.peek().is_some() {
        let skip = skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_visibility(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&mut toks);
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut n = 0;
    while toks.peek().is_some() {
        skip_attrs(&mut toks);
        skip_visibility(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_until_comma(&mut toks);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while toks.peek().is_some() {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        let body = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                toks.next();
                VariantBody::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                toks.next();
                VariantBody::Struct(parse_named_fields(g))
            }
            _ => VariantBody::Unit,
        };
        // Consume a trailing comma (and any discriminant — unsupported, but
        // skip_until_comma tolerates it).
        skip_until_comma(&mut toks);
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Body::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::serialize(x0))]),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::serialize({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: Default::default()", f.name)
                    } else {
                        format!("{0}: ::serde::field(v, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(v)?))"),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::seq_field(v, {i})?"))
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Body::Unit => format!("Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Tolerate the tagged form {"Variant": null} too.
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantBody::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::seq_field(inner, {i})?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}({})),\n",
                            elems.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: Default::default()", f.name)
                                } else {
                                    format!("{0}: ::serde::field(inner, \"{0}\")?", f.name)
                                }
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = (&m[0].0, &m[0].1);\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::msg(\"expected externally tagged enum value for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let _ = v;\n{body}\n}}\n}}\n"
    )
}
