//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros, [`ProptestConfig::with_cases`], [`Strategy`] implemented for
//! numeric ranges, and `prop::collection::vec`.
//!
//! Semantics: each property runs `cases` times with inputs drawn from a
//! deterministic per-test RNG (seeded from the test name, so runs are
//! reproducible). Failing cases report the case number and message but are
//! **not shrunk** — inputs here are small enough to debug directly.

#![allow(clippy::all)]
use std::hash::{Hash, Hasher};

/// Per-run configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Failure raised by `prop_assert!` family; carries the rendered message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 generator used to draw test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed explicitly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1) with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// Deterministic RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    TestRng::from_seed(h.finish() | 1)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn sample_with(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_with(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_with(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_with(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_with(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_with(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_with(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_with(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy drawing uniformly from one of several sub-strategies, the
/// engine behind [`prop_oneof!`]. Unlike real proptest there are no
/// weights; every arm is equally likely.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from boxed sub-strategies; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty union strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample_with(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample_with(rng)
    }
}

/// Box a strategy while keeping its value type visible to inference —
/// `Box::new(s) as _` inside [`prop_oneof!`] would erase it.
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Draw from one of several strategies with equal probability (the real
/// proptest's weighted form `N => strategy` is not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// Combinator strategies, mirroring proptest's `prop` module paths.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec`s with random length in `size` and elements
        /// drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// `Vec<S::Value>` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample_with(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample_with(rng);
                (0..len).map(|_| self.element.sample_with(rng)).collect()
            }
        }
    }
}

/// Assert a condition inside a `proptest!` body; failure aborts the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample_with(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, Union};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn dims() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..6, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Int ranges stay in bounds.
        fn int_in_bounds(n in 3usize..17) {
            prop_assert!((3..17).contains(&n));
        }

        fn float_in_bounds(x in -2.5f32..4.0) {
            prop_assert!((-2.5..4.0).contains(&x), "{} out of range", x);
        }

        fn vec_respects_size_and_bounds(v in prop::collection::vec(-10.0f32..10.0, 1..64)) {
            prop_assert!((1..64).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-10.0..10.0).contains(x)));
        }

        fn named_strategy_fn_works(d in dims()) {
            prop_assert!((1..4).contains(&d.len()));
            prop_assert!(d.iter().all(|&x| (1..6).contains(&x)));
        }

        fn eq_macro_accepts_owned_and_refs(n in 1usize..5) {
            let v = vec![0u8; n];
            prop_assert_eq!(v.len(), n);
            prop_assert_eq!(v.clone(), v);
        }

        fn oneof_draws_only_from_arms(n in prop_oneof![1usize..4, Just(64usize), Just(65usize)]) {
            prop_assert!((1..4).contains(&n) || n == 64 || n == 65);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("same-name");
        let mut b = crate::test_rng("same-name");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
