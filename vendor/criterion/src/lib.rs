//! Offline stand-in for `criterion`, covering the benchmark surface this
//! workspace uses: benchmark groups, `Bencher::iter` / `iter_batched`,
//! `BenchmarkId`, `Throughput::Bytes` reporting, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated so one sample runs long
//! enough to time reliably (≥ ~2 ms), then `sample_size` samples are taken
//! and the median ns/iteration is reported to stdout, with MB/s when a
//! byte throughput is set. No plots, no statistics beyond median/min/max.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! executables) every benchmark body runs exactly once as a smoke test.

#![allow(clippy::all)]
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` inputs are grouped. All variants behave identically
/// here: setup runs once per timed invocation, outside the timing window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render the display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// ns per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_count: usize,
    /// Smoke-test mode: run the body once, skip calibration.
    quick: bool,
}

const CALIBRATION_TARGET: Duration = Duration::from_millis(2);
const MAX_CALIBRATION_ITERS: u64 = 1 << 22;

impl Bencher {
    /// Time `routine`, called in a tight loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        // Calibrate iterations-per-sample so timing noise is amortized.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            if start.elapsed() >= CALIBRATION_TARGET || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on inputs built by `setup`; setup runs outside the
    /// timing window.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.quick {
            black_box(routine(setup()));
            self.samples.push(0.0);
            return;
        }
        // Calibrate: how many timed invocations make up one sample.
        let mut iters = 1u64;
        loop {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            if timed >= CALIBRATION_TARGET || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_count {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            self.samples.push(timed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--test` when running `harness = false` bench
        // targets under `cargo test`; run one-shot smoke tests then.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Upstream parses CLI filters here; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let group = self.benchmark_group(label.clone());
        group.run(label, None, f);
        group.finish();
        self
    }

    /// Upstream prints the summary report here; no-op.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Set per-iteration throughput for MB/s reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.run(label, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.run(label, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group. (Consumes it; reporting already happened per-bench.)
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&self, label: String, throughput: Option<Throughput>, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            quick: self.criterion.quick,
        };
        f(&mut bencher);
        if self.criterion.quick {
            println!("{label}: ok (smoke test)");
            return;
        }
        if bencher.samples.is_empty() {
            println!("{label}: no samples recorded");
            return;
        }
        let mut xs = bencher.samples;
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[xs.len() / 2];
        let min = xs[0];
        let max = xs[xs.len() - 1];
        let rate = match throughput {
            Some(Throughput::Bytes(bytes)) if median > 0.0 => {
                // bytes/ns == GB/s; report MB/s.
                format!("  {:10.1} MB/s", bytes as f64 / median * 1000.0)
            }
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:10.1} Melem/s", n as f64 / median * 1000.0)
            }
            _ => String::new(),
        };
        println!("{label}: median {median:12.1} ns/iter  (min {min:.1}, max {max:.1}){rate}");
    }
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group(quick: bool) -> Vec<f64> {
        let mut c = Criterion { quick };
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: 3,
            quick,
        };
        bencher.iter(|| black_box(1u64 + 1));
        g.finish();
        bencher.samples
    }

    #[test]
    fn quick_mode_runs_once() {
        let samples = run_group(true);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let samples = run_group(false);
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: 2,
            quick: false,
        };
        let mut built = 0u64;
        bencher.iter_batched(
            || {
                built += 1;
                vec![1u8; 64]
            },
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(built > 0);
        assert_eq!(bencher.samples.len(), 2);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::from_parameter(32).label, "32");
        assert_eq!(BenchmarkId::new("f", 7).label, "f/7");
    }
}
