//! Offline stand-in for the `rand` crate: the trait surface this workspace
//! uses ([`RngCore`], [`Rng`], [`SeedableRng`]) with uniform sampling for
//! the primitive types that appear at call sites.

#![allow(clippy::all)]
/// Raw generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Explicit-seed construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their natural domain (`Standard`
/// distribution in upstream rand: full range for integers, `[0, 1)` for
/// floats).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → [0, 1) with full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value over its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Compatibility module mirroring `rand::rngs`.
pub mod rngs {
    pub use super::small::SmallRng;
}

mod small {
    use super::{RngCore, SeedableRng};

    /// A small fast generator (xoshiro256++-style) for non-cryptographic
    /// use.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds small generators.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
        }
    }
}
