//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8
//! block cipher core as the generator. Streams are deterministic per seed
//! but are **not** bit-compatible with upstream `rand_chacha` (the seed
//! expansion differs); nothing in this workspace depends on upstream's
//! exact stream.

#![allow(clippy::all)]
use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unserved word index in `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64 (the
        // same expansion upstream rand uses for seed_from_u64).
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Words 12..13: 64-bit block counter; 14..15: nonce (zero).
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl ChaCha8Rng {
    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // Increment the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_spans_blocks() {
        // Crossing the 16-word block boundary keeps producing fresh values.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..48).map(|_| r.next_u32()).collect();
        let distinct: std::collections::HashSet<u32> = first.iter().copied().collect();
        assert!(distinct.len() > 40, "keystream looks degenerate");
    }

    #[test]
    fn uniform_unit_mean_is_centered() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
