//! Offline stand-in for the `serde` crate.
//!
//! The build container for this repository has no access to crates.io, so
//! the workspace vendors a minimal serde-compatible surface: the
//! [`Serialize`] / [`Deserialize`] traits, re-exported derive macros, and a
//! self-describing [`Value`] tree that `serde_json` (also vendored) renders
//! to and parses from JSON text.
//!
//! The design intentionally differs from upstream serde — there is no
//! `Serializer`/`Visitor` machinery, types convert to and from [`Value`]
//! directly — but the *call sites* in this workspace (derives, `serde_json`
//! functions, `#[serde(skip)]`) behave identically, including upstream's
//! externally-tagged enum representation.

#![allow(clippy::all)]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing value: the intermediate form between Rust types and
/// any text representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` round-trips).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(xs) => Some(xs),
            _ => None,
        }
    }

    /// Numeric view: any of the three numeric variants as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            Value::UInt(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Int(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

static NULL_VALUE: Value = Value::Null;

/// `v["key"]`: map lookup returning `Null` for missing keys or non-maps,
/// matching `serde_json`'s panic-free indexing.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

/// `v[i]`: sequence lookup returning `Null` out of bounds.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Seq(xs) => xs.get(i).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

/// Compact JSON rendering, so `Value` can be printed directly.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::UInt(x) => write!(f, "{x}"),
            Value::Float(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Seq(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Value::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// (De)serialisation error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Construct an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to the self-describing value tree.
    fn serialize(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the self-describing value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, Error};

    /// Owned deserialisation marker; blanket-implemented for every
    /// [`Deserialize`] type, matching upstream's usage in trait bounds.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Extract and deserialise a named field from a map value. Missing keys
/// deserialise from `Null`, so `Option` fields default to `None` while any
/// other type reports a clear error.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::deserialize(inner).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::deserialize(&Value::Null).map_err(|_| Error(format!("missing field `{name}`"))),
    }
}

/// Extract the `i`-th element of a sequence value (tuple/tuple-variant
/// decoding support for the derive macro).
pub fn seq_field<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
    match v {
        Value::Seq(s) => s
            .get(i)
            .ok_or_else(|| Error(format!("sequence too short: no element {i}")))
            .and_then(T::deserialize),
        _ => Err(Error::msg("expected sequence")),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for primitives and containers.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64,
);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // JSON has no NaN/Inf literal; non-finite floats serialise to
            // null and round-trip back to NaN.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                Ok(($(seq_field::<$t>(v, $idx)?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}
