//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus the
//! three distributions this workspace samples — [`Uniform`], [`Normal`]
//! (Box-Muller) and [`Dirichlet`] (via Marsaglia-Tsang gamma sampling).

#![allow(clippy::all)]
use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types [`Uniform`] can sample (floats here; ints go through `Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Uniform f64 in [0, 1) with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + unit_f64(rng) as f32 * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + unit_f64(rng) * (high - low)
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// `U[low, high)`; panics if the range is empty (matching upstream
    /// rand 0.8's `Uniform::new`).
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Uniform { low, high }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(self.low, self.high, rng)
    }
}

/// Error for invalid normal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f32,
    std: f32,
}

impl Normal {
    /// Construct; errors on non-finite or negative `std`.
    pub fn new(mean: f32, std: f32) -> Result<Self, NormalError> {
        if !std.is_finite() || !mean.is_finite() || std < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std })
    }
}

/// One standard-normal f64 draw via the Box-Muller transform.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - rng.gen::<f64>();
    let u2 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f32> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        self.mean + self.std * standard_normal(rng) as f32
    }
}

/// Error for invalid Dirichlet parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirichletError;

impl std::fmt::Display for DirichletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dirichlet requires ≥ 2 strictly positive concentrations")
    }
}

impl std::error::Error for DirichletError {}

/// Dirichlet distribution over the probability simplex.
#[derive(Debug, Clone)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Construct from concentration parameters.
    pub fn new(alpha: &[f64]) -> Result<Self, DirichletError> {
        if alpha.len() < 2 || alpha.iter().any(|&a| !(a > 0.0) || !a.is_finite()) {
            return Err(DirichletError);
        }
        Ok(Dirichlet {
            alpha: alpha.to_vec(),
        })
    }
}

/// Gamma(shape, 1) sample via Marsaglia-Tsang, with the `U^(1/α)` boost
/// for shape < 1.
fn gamma_sample<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // G(α) = G(α+1) · U^(1/α).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

impl Distribution<Vec<f64>> for Dirichlet {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self.alpha.iter().map(|&a| gamma_sample(a, rng)).collect();
        let sum: f64 = draws.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            // Degenerate underflow (tiny α): fall back to a one-hot at a
            // uniformly chosen coordinate, the limiting Dir(α→0) behaviour.
            let k = rng.gen_range(0..draws.len());
            draws.iter_mut().for_each(|d| *d = 0.0);
            draws[k] = 1.0;
            return draws;
        }
        draws.iter_mut().for_each(|d| *d /= sum);
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let d = Uniform::new(-2.0f32, 3.0);
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SmallRng::seed_from_u64(2);
        let d = Normal::new(1.0, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_std() {
        assert!(Normal::new(0.0, f32::NAN).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = SmallRng::seed_from_u64(3);
        for &beta in &[0.05, 0.5, 5.0] {
            let d = Dirichlet::new(&vec![beta; 8]).unwrap();
            for _ in 0..100 {
                let p = d.sample(&mut r);
                let sum: f64 = p.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn small_beta_is_skewed_large_beta_is_flat() {
        let mut r = SmallRng::seed_from_u64(4);
        let max_of = |beta: f64, r: &mut SmallRng| {
            let d = Dirichlet::new(&vec![beta; 10]).unwrap();
            let mut acc = 0.0;
            for _ in 0..200 {
                let p = d.sample(r);
                acc += p.iter().cloned().fold(0.0, f64::max);
            }
            acc / 200.0
        };
        let skewed = max_of(0.1, &mut r);
        let flat = max_of(50.0, &mut r);
        assert!(
            skewed > flat + 0.2,
            "expected skew: max@0.1 = {skewed}, max@50 = {flat}"
        );
    }

    #[test]
    fn dirichlet_rejects_bad_alpha() {
        assert!(Dirichlet::new(&[1.0]).is_err());
        assert!(Dirichlet::new(&[1.0, 0.0]).is_err());
    }
}
