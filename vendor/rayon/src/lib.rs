//! Offline stand-in for `rayon`, covering the parallel-iterator surface
//! this workspace uses: `par_iter`, `par_iter_mut`, `par_chunks_mut` on
//! slices, the `enumerate` / `map` / `filter` adapters, and the `for_each`
//! / `collect` terminals.
//!
//! Execution model: a **persistent shared worker pool**. The first
//! parallel call spawns `threads − 1` long-lived workers blocked on a
//! shared injector queue; every later call just enqueues jobs, so the
//! per-call cost is a handful of mutex operations (~1 µs) instead of the
//! 20–60 µs thread spawn+join the previous scoped-thread design paid.
//! A terminal splits its source into several contiguous partitions per
//! worker (not one — finer grain lets fast workers absorb more of the
//! slice, the same load-balancing effect work stealing buys without
//! per-worker deques) and pushes each as a job; the **calling thread
//! participates**, draining the queue until its own jobs are done, so a
//! parallel call never deadlocks even when every worker is busy and
//! nested parallel calls degrade gracefully to help-first execution on
//! the caller. Results are concatenated in partition order, which
//! preserves item order exactly like rayon's indexed `collect`.
//!
//! Small inputs (and `par_chunks_mut` under [`PAR_CHUNK_ELEMENTS`] total
//! elements, the hot matmul path) run inline on the calling thread
//! without touching the queue, so tiny tensor ops pay no dispatch cost.
//!
//! The worker count defaults to `std::thread::available_parallelism()` and
//! can be overridden with the `SPATL_THREADS` environment variable (read
//! once, at the first parallel call). `SPATL_THREADS=1` forces fully
//! sequential execution — no workers are ever spawned, every "parallel"
//! call runs inline — useful for profiling the kernels themselves and
//! for reproducing timing-sensitive bugs; values above the core count
//! oversubscribe, which is occasionally useful on cgroup-limited CI
//! runners where `available_parallelism` under-reports.
//!
//! A worker panic is caught, recorded on the submitting call's latch, and
//! re-raised as `"parallel worker panicked"` on the calling thread once
//! the call's remaining jobs have drained — mirroring rayon's behaviour
//! of propagating the panic to the caller rather than poisoning the pool
//! (the workers survive and serve later calls).

#![allow(clippy::all)]
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Below this many base elements a `par_chunks_mut` call runs inline —
/// dispatch overhead costs more than the work for small tensors.
///
/// Rationale for the value: enqueueing jobs on the persistent pool and
/// waking workers costs a few µs per call (mutex + condvar traffic), and
/// splitting a tensor across cores forfeits the cache locality of a
/// single-threaded sweep. At the ~2–16 f32 FLOP/element of the tensor hot
/// paths, 32 Ki elements is the scale where the per-call work (≥ ~100 µs)
/// clearly dominates both effects; below it, inline execution wins even
/// on many-core hosts. The threshold counts *base slice elements*, not
/// chunks, so a `par_chunks_mut` over a `[batch, C·H·W]` activation
/// crosses it as soon as the whole tensor does.
pub const PAR_CHUNK_ELEMENTS: usize = 32_768;

/// Partitions submitted per worker thread by one terminal. Finer than
/// one-per-thread so a worker that finishes early picks up more of the
/// slice instead of idling — the load-balancing effect work stealing
/// provides, paid for with a few extra queue operations per call.
const PARTITIONS_PER_THREAD: usize = 4;

/// A splittable, sequentially drivable work source.
pub trait ParallelIterator: Sized + Send {
    /// The item type produced.
    type Item: Send;

    /// Number of base items remaining (before `filter`).
    fn len(&self) -> usize;

    /// True when no base items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this source is worth spawning threads for.
    fn parallel_worthwhile(&self) -> bool;

    /// Split into two sources at base-item index `i`.
    fn split_at(self, i: usize) -> (Self, Self);

    /// Drive the whole partition sequentially into `sink`.
    fn drive(self, sink: &mut dyn FnMut(Self::Item));

    /// Pair every item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            offset: 0,
        }
    }

    /// Transform items.
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
    {
        Map { inner: self, f }
    }

    /// Keep items satisfying a predicate.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Clone + Send,
    {
        Filter { inner: self, p }
    }

    /// Run a closure on every item, in parallel partitions.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Clone + Send,
    {
        run_parts(self, move |part| {
            let f = f.clone();
            let mut sink = move |item| f(item);
            part.drive(&mut sink);
        });
    }

    /// Collect items, preserving order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = collect_parts(self, |part| {
            let mut items = Vec::new();
            part.drive(&mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }
}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build from the iterator, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = collect_parts(iter, |part| {
            let mut items = Vec::new();
            part.drive(&mut |item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

/// Resolve a `SPATL_THREADS` value; `None`, empty, zero, or unparsable
/// strings fall back to the detected core count.
fn parse_thread_override(raw: Option<&str>, detected: usize) -> usize {
    match raw.map(str::trim) {
        Some(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => detected,
        },
        _ => detected,
    }
}

/// Number of worker threads terminals split work across: the detected
/// core count unless overridden by `SPATL_THREADS` (read once, at the
/// first call). Matches real rayon's `current_num_threads` so embedders
/// — e.g. the spatl-net decode worker pool — can size their own pools
/// consistently with this crate's partitioning. On a single-core host
/// without an override this returns 1 and every "parallel" call runs
/// inline on the caller.
pub fn current_num_threads() -> usize {
    thread_count()
}

fn thread_count() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let detected = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        parse_thread_override(std::env::var("SPATL_THREADS").ok().as_deref(), detected)
    })
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// One queued unit of work: a lifetime-erased closure plus the completion
/// latch of the parallel call that submitted it.
struct Job {
    run: Box<dyn FnOnce() + Send>,
    latch: Arc<Latch>,
}

/// Per-call completion latch: counts outstanding jobs and records whether
/// any of them panicked. The submitting thread blocks on it (helping drain
/// the queue in the meantime) until every job has completed.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    pending: usize,
    panicked: bool,
}

impl Latch {
    fn new(pending: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new(LatchState {
                pending,
                panicked: false,
            }),
            done: Condvar::new(),
        })
    }

    /// One job finished (cleanly or by panic). Opens the latch when it
    /// was the last one.
    fn complete(&self, panicked: bool) {
        let mut st = self.state.lock().unwrap();
        st.pending -= 1;
        st.panicked |= panicked;
        if st.pending == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every job has completed, running queued work while
    /// waiting. Help-first participation is what makes nested parallel
    /// calls safe: a thread that owns an open latch never sleeps while
    /// runnable jobs exist, so the pool cannot deadlock even with zero
    /// workers (single-core hosts) or with every worker busy.
    fn wait(&self, pool: &Pool) {
        loop {
            if self.state.lock().unwrap().pending == 0 {
                return;
            }
            if let Some(job) = pool.try_pop() {
                run_job(job);
                continue;
            }
            // Queue empty but jobs still running on workers: sleep until
            // the last completion notifies. Re-checking `pending` under
            // the same lock `complete` holds makes the wakeup lossless.
            let guard = self.state.lock().unwrap();
            if guard.pending == 0 {
                return;
            }
            drop(self.done.wait(guard).unwrap());
        }
    }
}

/// The shared injector queue the persistent workers (and helping callers)
/// drain. Spawned lazily at the first parallel call that needs it.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl Pool {
    /// The process-wide pool; `thread_count() − 1` workers are spawned on
    /// first access (the calling thread itself is the final "worker").
    /// With `SPATL_THREADS=1` this is never reached — every parallel call
    /// short-circuits inline before touching the pool.
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        static WORKERS: OnceLock<()> = OnceLock::new();
        let pool = POOL.get_or_init(|| Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        WORKERS.get_or_init(|| {
            for i in 0..thread_count().saturating_sub(1) {
                std::thread::Builder::new()
                    .name(format!("spatl-pool-{i}"))
                    .spawn(move || pool.worker_loop())
                    .expect("failed to spawn pool worker");
            }
        });
        pool
    }

    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    match q.pop_front() {
                        Some(job) => break job,
                        None => q = self.available.wait(q).unwrap(),
                    }
                }
            };
            run_job(job);
        }
    }
}

/// Run one job, catching any panic so the pool thread survives; the
/// panic is recorded on the job's latch and re-raised on the submitting
/// thread instead.
fn run_job(job: Job) {
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job.run)).is_err();
    job.latch.complete(panicked);
}

/// Raw-pointer wrapper that asserts cross-thread sendability. Each job
/// writes through a distinct offset, so there is no aliasing.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}
impl<T> Copy for SendPtr<T> {}

/// Split `iter` into partitions and run `job` on each via the persistent
/// pool, returning per-partition results in order. Falls back to a single
/// inline call when parallelism isn't worthwhile or `threads <= 1`.
fn collect_parts<I, R, F>(iter: I, job: F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Clone + Send,
{
    collect_parts_n(iter, job, thread_count())
}

/// [`collect_parts`] with an explicit thread budget — separated so tests
/// can exercise the pool machinery even when `thread_count()` is 1 (the
/// caller drains its own jobs; correctness never depends on workers
/// existing).
fn collect_parts_n<I, R, F>(iter: I, job: F, threads: usize) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Clone + Send,
{
    if threads <= 1 || iter.len() <= 1 || !iter.parallel_worthwhile() {
        return vec![job(iter)];
    }
    let parts = split_into(iter, threads * PARTITIONS_PER_THREAD);
    let n = parts.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let latch = Latch::new(n);
    let pool = Pool::global();
    let slots = SendPtr(results.as_mut_ptr());
    for (i, part) in parts.into_iter().enumerate() {
        let job = job.clone();
        // SAFETY: `i < n`, so the offset stays inside the Vec's buffer.
        let slot = SendPtr(unsafe { slots.0.add(i) });
        let closure: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            // Rebind the whole wrapper so 2021 disjoint capture takes the
            // Send-asserting SendPtr, not its raw field.
            let slot = slot;
            let r = job(part);
            // SAFETY: slot `i` belongs to this job alone (one job per
            // index), the Vec outlives the latch wait below, and the
            // latch's mutex orders this write before the caller's read.
            unsafe { *slot.0 = Some(r) };
        });
        // SAFETY: lifetime erasure for the queue. The borrows inside the
        // closure (`results`, captured `iter` data, `job`) are owned by
        // this stack frame, and `latch.wait` below does not return until
        // every submitted job has run to completion — so the closure
        // never outlives what it borrows. Only the type is widened to
        // 'static; the bytes are untouched.
        let run: Box<dyn FnOnce() + Send> = unsafe { std::mem::transmute(closure) };
        pool.push(Job {
            run,
            latch: latch.clone(),
        });
    }
    latch.wait(pool);
    if latch.state.lock().unwrap().panicked {
        panic!("parallel worker panicked");
    }
    results
        .into_iter()
        .map(|r| r.expect("pool job completed without writing its slot"))
        .collect()
}

fn run_parts<I, F>(iter: I, job: F)
where
    I: ParallelIterator,
    F: Fn(I) + Clone + Send,
{
    let _ = collect_parts(iter, move |part| {
        job(part);
    });
}

fn split_into<I: ParallelIterator>(iter: I, parts: usize) -> Vec<I> {
    let n = iter.len();
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = iter;
    // The first `extra` partitions take one extra item.
    for i in 0..parts - 1 {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel shared-slice iterator.
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync + Send> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        true
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(i);
        (Iter { slice: a }, Iter { slice: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Parallel mutable-slice iterator.
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        true
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(i);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Parallel mutable-chunk iterator.
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn parallel_worthwhile(&self) -> bool {
        // Chunked slices are the tensor hot path; small tensors stay
        // inline.
        self.slice.len() >= PAR_CHUNK_ELEMENTS
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let mid = (i * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMut {
                slice: a,
                chunk: self.chunk,
            },
            ChunksMut {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice.chunks_mut(self.chunk) {
            sink(item);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `enumerate` adapter: items paired with global indices.
pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        self.inner.parallel_worthwhile()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let offset = self.offset;
        let (a, b) = self.inner.split_at(i);
        (
            Enumerate { inner: a, offset },
            Enumerate {
                inner: b,
                offset: offset + i,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let mut idx = self.offset;
        self.inner.drive(&mut |item| {
            sink((idx, item));
            idx += 1;
        });
    }
}

/// `map` adapter.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        self.inner.parallel_worthwhile()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(i);
        (
            Map {
                inner: a,
                f: self.f.clone(),
            },
            Map {
                inner: b,
                f: self.f,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let f = self.f;
        self.inner.drive(&mut |item| sink(f(item)));
    }
}

/// `filter` adapter.
pub struct Filter<I, P> {
    inner: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Clone + Send,
{
    type Item = I::Item;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        self.inner.parallel_worthwhile()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(i);
        (
            Filter {
                inner: a,
                p: self.p.clone(),
            },
            Filter {
                inner: b,
                p: self.p,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let p = self.p;
        self.inner.drive(&mut |item| {
            if p(&item) {
                sink(item);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Slice entry points
// ---------------------------------------------------------------------------

/// `par_iter` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Iter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over mutable chunks of `chunk` elements.
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunksMut { slice: self, chunk }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{FromParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_filter_map_collect() {
        let mut xs: Vec<u64> = vec![7; 100];
        let picked: Vec<u64> = xs
            .par_iter_mut()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, v)| {
                *v += 1;
                i as u64
            })
            .collect();
        assert_eq!(picked, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
        // Non-selected items untouched.
        assert_eq!(xs.iter().filter(|&&v| v == 8).count(), 34);
    }

    #[test]
    fn for_each_mutates_every_item() {
        let mut xs = vec![0u32; 1000];
        xs.par_iter_mut().for_each(|v| *v += 5);
        assert!(xs.iter().all(|&v| v == 5));
    }

    #[test]
    fn chunks_cover_slice_in_order() {
        let mut xs: Vec<usize> = vec![0; 100_000];
        xs.par_chunks_mut(333).enumerate().for_each(|(blk, chunk)| {
            for v in chunk.iter_mut() {
                *v = blk;
            }
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, i / 333);
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut xs: Vec<u8> = Vec::new();
        let out: Vec<u8> = xs.par_iter_mut().map(|v| *v).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_matches_sequential() {
        let xs: Vec<u64> = (0..50_000).collect();
        let total: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn thread_override_parsing() {
        use crate::parse_thread_override;
        assert_eq!(parse_thread_override(None, 8), 8);
        assert_eq!(parse_thread_override(Some(""), 8), 8);
        assert_eq!(parse_thread_override(Some("  "), 8), 8);
        assert_eq!(parse_thread_override(Some("0"), 8), 8);
        assert_eq!(parse_thread_override(Some("nope"), 8), 8);
        assert_eq!(parse_thread_override(Some("1"), 8), 1);
        assert_eq!(parse_thread_override(Some(" 4 "), 8), 4);
        assert_eq!(parse_thread_override(Some("64"), 8), 64);
    }

    // -- Persistent-pool machinery ---------------------------------------
    //
    // `collect_parts_n` with an explicit thread budget forces the pool
    // path regardless of SPATL_THREADS / core count. The caller always
    // participates in draining the queue, so these tests are meaningful
    // even on a single-core host with zero spawned workers.

    use crate::collect_parts_n;

    fn pool_sum(xs: &[u64], threads: usize) -> u64 {
        let parts = collect_parts_n(
            xs.par_iter(),
            |part| {
                let mut s = 0u64;
                crate::ParallelIterator::drive(part, &mut |&x| s += x);
                s
            },
            threads,
        );
        parts.into_iter().sum()
    }

    #[test]
    fn pool_is_reused_across_many_calls() {
        let xs: Vec<u64> = (0..10_000).collect();
        let want: u64 = xs.iter().sum();
        for _ in 0..100 {
            assert_eq!(pool_sum(&xs, 4), want);
        }
    }

    #[test]
    fn pool_preserves_partition_order() {
        let xs: Vec<u64> = (0..5_000).collect();
        let parts = collect_parts_n(
            xs.par_iter(),
            |part| {
                let mut items = Vec::new();
                crate::ParallelIterator::drive(part, &mut |&x| items.push(x));
                items
            },
            8,
        );
        let flat: Vec<u64> = parts.into_iter().flatten().collect();
        assert_eq!(flat, xs);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        let xs: Vec<u64> = (0..64).collect();
        let parts = collect_parts_n(
            xs.par_iter(),
            |part| {
                let mut inner_total = 0u64;
                crate::ParallelIterator::drive(part, &mut |&x| {
                    // Nested parallel call from inside a pool job: the
                    // running thread helps drain the queue, so this must
                    // not deadlock.
                    let ys: Vec<u64> = (0..50).map(|i| x + i).collect();
                    inner_total += pool_sum(&ys, 3);
                });
                inner_total
            },
            4,
        );
        let got: u64 = parts.into_iter().sum();
        let want: u64 = (0..64u64)
            .map(|x| (0..50u64).map(|i| x + i).sum::<u64>())
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let xs: Vec<u64> = (t * 1000..(t + 1) * 1000).collect();
                    let want: u64 = xs.iter().sum();
                    for _ in 0..50 {
                        assert_eq!(pool_sum(&xs, 4), want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller_and_pool_survives() {
        let xs: Vec<u64> = (0..1_000).collect();
        let caught = std::panic::catch_unwind(|| {
            collect_parts_n(
                xs.par_iter(),
                |part| {
                    crate::ParallelIterator::drive(part, &mut |&x| {
                        if x == 777 {
                            panic!("boom");
                        }
                    });
                },
                4,
            );
        });
        let msg = caught.expect_err("panic must propagate");
        let msg = msg
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| msg.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(msg, "parallel worker panicked");
        // The pool is not poisoned: later calls still work.
        let want: u64 = xs.iter().sum();
        assert_eq!(pool_sum(&xs, 4), want);
    }
}
