//! Offline stand-in for `rayon`, covering the parallel-iterator surface
//! this workspace uses: `par_iter`, `par_iter_mut`, `par_chunks_mut` on
//! slices, the `enumerate` / `map` / `filter` adapters, and the `for_each`
//! / `collect` terminals.
//!
//! Execution model: instead of a work-stealing pool, a terminal splits its
//! source into one contiguous partition per available core and runs each
//! partition on a `std::thread::scope` thread. Small inputs (and
//! `par_chunks_mut` under [`PAR_CHUNK_ELEMENTS`] total elements, the hot
//! matmul path) run inline on the calling thread, so tiny tensor ops pay
//! no spawn cost. Results are concatenated in partition order, which
//! preserves item order exactly like rayon's indexed `collect`.
//!
//! The worker count defaults to `std::thread::available_parallelism()` and
//! can be overridden with the `SPATL_THREADS` environment variable (read
//! once, at the first parallel call). `SPATL_THREADS=1` forces fully
//! sequential execution — useful for profiling the kernels themselves and
//! for reproducing timing-sensitive bugs; values above the core count
//! oversubscribe, which is occasionally useful on cgroup-limited CI
//! runners where `available_parallelism` under-reports.

#![allow(clippy::all)]
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Below this many base elements a `par_chunks_mut` call runs inline —
/// thread spawn costs more than the work for small tensors.
///
/// Rationale for the value: each scoped worker costs roughly 20–60 µs to
/// spawn and join (no pool persists between calls). At the ~2–16 f32
/// FLOP/element of the tensor hot paths, 32 Ki elements is the scale where
/// the per-call work (≥ ~100 µs) starts to clearly dominate that overhead;
/// below it, inline execution wins even on many-core hosts. The threshold
/// counts *base slice elements*, not chunks, so a `par_chunks_mut` over a
/// `[batch, C·H·W]` activation crosses it as soon as the whole tensor does.
pub const PAR_CHUNK_ELEMENTS: usize = 32_768;

/// A splittable, sequentially drivable work source.
pub trait ParallelIterator: Sized + Send {
    /// The item type produced.
    type Item: Send;

    /// Number of base items remaining (before `filter`).
    fn len(&self) -> usize;

    /// True when no base items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this source is worth spawning threads for.
    fn parallel_worthwhile(&self) -> bool;

    /// Split into two sources at base-item index `i`.
    fn split_at(self, i: usize) -> (Self, Self);

    /// Drive the whole partition sequentially into `sink`.
    fn drive(self, sink: &mut dyn FnMut(Self::Item));

    /// Pair every item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            offset: 0,
        }
    }

    /// Transform items.
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
    {
        Map { inner: self, f }
    }

    /// Keep items satisfying a predicate.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Clone + Send,
    {
        Filter { inner: self, p }
    }

    /// Run a closure on every item, in parallel partitions.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Clone + Send,
    {
        run_parts(self, move |part| {
            let f = f.clone();
            let mut sink = move |item| f(item);
            part.drive(&mut sink);
        });
    }

    /// Collect items, preserving order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = collect_parts(self, |part| {
            let mut items = Vec::new();
            part.drive(&mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }
}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build from the iterator, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = collect_parts(iter, |part| {
            let mut items = Vec::new();
            part.drive(&mut |item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

/// Resolve a `SPATL_THREADS` value; `None`, empty, zero, or unparsable
/// strings fall back to the detected core count.
fn parse_thread_override(raw: Option<&str>, detected: usize) -> usize {
    match raw.map(str::trim) {
        Some(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => detected,
        },
        _ => detected,
    }
}

/// Number of worker threads terminals split work across: the detected
/// core count unless overridden by `SPATL_THREADS` (read once, at the
/// first call). Matches real rayon's `current_num_threads` so embedders
/// — e.g. the spatl-net decode worker pool — can size their own pools
/// consistently with this crate's partitioning. On a single-core host
/// without an override this returns 1 and every "parallel" call runs
/// inline on the caller.
pub fn current_num_threads() -> usize {
    thread_count()
}

fn thread_count() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let detected = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        parse_thread_override(std::env::var("SPATL_THREADS").ok().as_deref(), detected)
    })
}

/// Split `iter` into up to `thread_count` partitions and run `job` on each,
/// returning per-partition results in order. Falls back to a single inline
/// call when parallelism isn't worthwhile.
fn collect_parts<I, R, F>(iter: I, job: F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Clone + Send,
{
    let threads = thread_count();
    if threads <= 1 || iter.len() <= 1 || !iter.parallel_worthwhile() {
        return vec![job(iter)];
    }
    let parts = split_into(iter, threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                let job = job.clone();
                scope.spawn(move || job(part))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

fn run_parts<I, F>(iter: I, job: F)
where
    I: ParallelIterator,
    F: Fn(I) + Clone + Send,
{
    let _ = collect_parts(iter, move |part| {
        job(part);
    });
}

fn split_into<I: ParallelIterator>(iter: I, parts: usize) -> Vec<I> {
    let n = iter.len();
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = iter;
    // The first `extra` partitions take one extra item.
    for i in 0..parts - 1 {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel shared-slice iterator.
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync + Send> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        true
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(i);
        (Iter { slice: a }, Iter { slice: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Parallel mutable-slice iterator.
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        true
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(i);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Parallel mutable-chunk iterator.
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn parallel_worthwhile(&self) -> bool {
        // Chunked slices are the tensor hot path; small tensors stay
        // inline.
        self.slice.len() >= PAR_CHUNK_ELEMENTS
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let mid = (i * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMut {
                slice: a,
                chunk: self.chunk,
            },
            ChunksMut {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice.chunks_mut(self.chunk) {
            sink(item);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `enumerate` adapter: items paired with global indices.
pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        self.inner.parallel_worthwhile()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let offset = self.offset;
        let (a, b) = self.inner.split_at(i);
        (
            Enumerate { inner: a, offset },
            Enumerate {
                inner: b,
                offset: offset + i,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let mut idx = self.offset;
        self.inner.drive(&mut |item| {
            sink((idx, item));
            idx += 1;
        });
    }
}

/// `map` adapter.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        self.inner.parallel_worthwhile()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(i);
        (
            Map {
                inner: a,
                f: self.f.clone(),
            },
            Map {
                inner: b,
                f: self.f,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let f = self.f;
        self.inner.drive(&mut |item| sink(f(item)));
    }
}

/// `filter` adapter.
pub struct Filter<I, P> {
    inner: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Clone + Send,
{
    type Item = I::Item;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn parallel_worthwhile(&self) -> bool {
        self.inner.parallel_worthwhile()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(i);
        (
            Filter {
                inner: a,
                p: self.p.clone(),
            },
            Filter {
                inner: b,
                p: self.p,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let p = self.p;
        self.inner.drive(&mut |item| {
            if p(&item) {
                sink(item);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Slice entry points
// ---------------------------------------------------------------------------

/// `par_iter` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Iter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over mutable chunks of `chunk` elements.
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunksMut { slice: self, chunk }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{FromParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_filter_map_collect() {
        let mut xs: Vec<u64> = vec![7; 100];
        let picked: Vec<u64> = xs
            .par_iter_mut()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, v)| {
                *v += 1;
                i as u64
            })
            .collect();
        assert_eq!(picked, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
        // Non-selected items untouched.
        assert_eq!(xs.iter().filter(|&&v| v == 8).count(), 34);
    }

    #[test]
    fn for_each_mutates_every_item() {
        let mut xs = vec![0u32; 1000];
        xs.par_iter_mut().for_each(|v| *v += 5);
        assert!(xs.iter().all(|&v| v == 5));
    }

    #[test]
    fn chunks_cover_slice_in_order() {
        let mut xs: Vec<usize> = vec![0; 100_000];
        xs.par_chunks_mut(333).enumerate().for_each(|(blk, chunk)| {
            for v in chunk.iter_mut() {
                *v = blk;
            }
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, i / 333);
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut xs: Vec<u8> = Vec::new();
        let out: Vec<u8> = xs.par_iter_mut().map(|v| *v).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_matches_sequential() {
        let xs: Vec<u64> = (0..50_000).collect();
        let total: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn thread_override_parsing() {
        use crate::parse_thread_override;
        assert_eq!(parse_thread_override(None, 8), 8);
        assert_eq!(parse_thread_override(Some(""), 8), 8);
        assert_eq!(parse_thread_override(Some("  "), 8), 8);
        assert_eq!(parse_thread_override(Some("0"), 8), 8);
        assert_eq!(parse_thread_override(Some("nope"), 8), 8);
        assert_eq!(parse_thread_override(Some("1"), 8), 1);
        assert_eq!(parse_thread_override(Some(" 4 "), 8), 4);
        assert_eq!(parse_thread_override(Some("64"), 8), 64);
    }
}
